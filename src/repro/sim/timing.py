"""Timing models: when an in-transit message *may* be delivered.

The kernel (:class:`~repro.sim.runtime.Runtime`) separates two orthogonal
questions that the paper's model bundles into "the environment":

* **Timing** — which in-transit messages are *eligible* for delivery right
  now (this module);
* **Scheduling** — which eligible message the adversarial environment
  actually picks (:mod:`repro.sim.scheduler`).

A :class:`TimingModel` owns the first question. Three models ship:

* :class:`Asynchronous` — every in-transit message is always eligible; the
  scheduler has full power. This is the paper's Section 2 network and the
  kernel's default.
* :class:`LockStep` — the synchronous baseline (R1/R2 setting): messages
  sent in round *r* become eligible only in round *r + 1*, and at every
  round boundary each live process observes a *tick*
  (:meth:`~repro.sim.process.Process.on_tick`). ``SyncRuntime`` is a thin
  adapter over the kernel with this model.
* :class:`BoundedDelay` — partial synchrony: after an optional global
  stabilization time (GST, in delivery steps), every message must be
  delivered within ``d`` steps of being sent. When messages become overdue
  the eligible set shrinks to exactly the overdue ones, forcing the
  scheduler's hand; ``d → ∞`` recovers :class:`Asynchronous`, ``d = 1`` is
  nearly FIFO.

Timing models are addressable by JSON-safe names (``"async"``,
``"lockstep"``, ``"bounded-16"``, ``"bounded-16@200"``) via
:func:`timing_from_name`, which is what lets
:class:`~repro.experiments.spec.ScenarioSpec` grids, the CLI
(``repro run --timing ...``), and benchmarks sweep timing the way they
already sweep schedulers.

To add a new model: subclass :class:`TimingModel` (implement
:meth:`~TimingModel.eligible`, and :meth:`~TimingModel.advance` if the
model has a notion of time passing while no message is deliverable), then
:func:`register_timing` a name for it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError, StepLimitExceeded
from repro.sim.network import Message, Network, TransitPool

ENVIRONMENT_PID = -1
"""Synthetic sender id for environment-injected signals (start signals)."""


class TimingModel:
    """Decides which in-transit messages are currently deliverable."""

    name = "timing"

    def reset(self, runtime) -> None:
        """Prepare for a fresh run (called by the kernel before the loop)."""

    def on_send(self, msg: Message, step: int) -> None:
        """Observe a send (stamp readiness / deadlines as needed)."""

    def on_deliver(self, msg: Message, step: int) -> None:
        """Observe a delivery (retire bookkeeping for ``msg.uid``)."""

    def eligible(self, network: Network, step: int) -> TransitPool:
        """The pool the scheduler may choose from at this step."""
        raise NotImplementedError

    def advance(self, runtime) -> bool:
        """No eligible message but work may remain: advance virtual time.

        Return True if time advanced (the kernel re-computes eligibility),
        False if the model is out of time (the kernel treats the run as
        quiesced). Models with no virtual clock never need this.
        """
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Asynchronous(TimingModel):
    """The paper's asynchronous network: everything in transit is fair game."""

    name = "async"

    def eligible(self, network: Network, step: int) -> TransitPool:
        return network.view()


class LockStep(TimingModel):
    """Synchronous rounds: sent in round r, deliverable in round r + 1.

    Within a round the scheduler still orders deliveries, but it can only
    choose among that round's messages — so no process can get ahead of the
    round structure, which is exactly the broadcast-friendly synchronous
    model of the paper's R1/R2 baselines. At each round boundary every
    live process receives :meth:`~repro.sim.process.Process.on_tick`;
    message-driven protocol processes ignore ticks (the default is a
    no-op), while the round-based :class:`~repro.sim.sync.SyncProcess`
    adapter uses them to fire ``on_round``.

    Environment-injected messages (start signals) are eligible immediately,
    in round 0, before any ticks.
    """

    name = "lockstep"

    def __init__(self, max_rounds: int = 10_000) -> None:
        if max_rounds < 1:
            raise SimulationError("max_rounds must be >= 1")
        self.max_rounds = max_rounds
        self.round = 0
        self._future: dict[int, Message] = {}
        # uid -> view of this round's still-deliverable messages, maintained
        # incrementally so eligible() never rebuilds it from scratch.
        self._views: dict[int, "object"] = {}
        self._dropped_seen = 0
        self._ticked = True  # round 0 activations happen via start signals

    def reset(self, runtime) -> None:
        self.round = 0
        self._future = {}
        self._views = {}
        self._dropped_seen = 0
        self._ticked = True

    def rounds_completed(self) -> int:
        """Number of executed rounds (matches the legacy SyncRuntime count)."""
        return self.round + 1

    def on_send(self, msg: Message, step: int) -> None:
        if msg.sender == ENVIRONMENT_PID:
            self._views[msg.uid] = msg.view()
        else:
            self._future[msg.uid] = msg

    def on_deliver(self, msg: Message, step: int) -> None:
        self._views.pop(msg.uid, None)

    def eligible(self, network: Network, step: int) -> TransitPool:
        views = self._views
        if network.total_dropped != self._dropped_seen:
            # Dropped messages (halted recipients, relaxed drops) leave
            # stale uids behind; prune only when a drop actually happened.
            self._dropped_seen = network.total_dropped
            stale = [uid for uid in views if network.get(uid) is None]
            for uid in stale:
                del views[uid]
        # A dict view supports len/iteration/truthiness — everything the
        # scheduler paths need — so no per-step list copy is made.
        return views.values()

    def advance(self, runtime) -> bool:
        if not self._ticked:
            # The round's deliveries have drained: fire the round boundary.
            self._ticked = True
            runtime.tick_processes(self.round)
            return True
        if self._future:
            network = runtime.network
            views = {
                uid: m.view()
                for uid, m in self._future.items()
                if network.get(uid) is not None
            }
            self._future = {}
            if not views:
                # Every message of the next round was discarded (recipients
                # halted): no live process has mail, so the round structure
                # ends here — matching the legacy synchronous loop, which
                # never executed a mail-less round.
                return False
            if self.round + 1 >= self.max_rounds:
                if runtime.raise_on_step_limit:
                    raise StepLimitExceeded(
                        f"no quiescence after {self.max_rounds} "
                        f"synchronous rounds"
                    )
                return False
            self.round += 1
            self._views = views
            self._ticked = False
            return True
        return False


class BoundedDelay(TimingModel):
    """Partial synchrony: delivery within ``d`` steps, after GST.

    Every message must be delivered within ``d`` kernel steps (deliveries)
    of ``max(send_step, gst)``. While no message is overdue the scheduler
    has full asynchronous freedom; once messages pass their deadline the
    eligible set collapses to the *earliest-deadline class* of the overdue
    ones, so overdue traffic drains in deadline order (one delivery per
    step serializes simultaneous deadlines — the unavoidable slack of a
    discrete-event clock). Smaller ``d`` means a weaker adversary
    (``d = 1`` forces near-FIFO delivery); growing ``d`` monotonically
    enlarges the set of schedules the environment can realise, degrading
    towards full asynchrony.
    """

    name = "bounded"

    def __init__(self, d: int, gst: int = 0) -> None:
        if d < 1:
            raise SimulationError("BoundedDelay needs d >= 1")
        if gst < 0:
            raise SimulationError("BoundedDelay needs gst >= 0")
        self.d = d
        self.gst = gst
        self.name = f"bounded-{d}" if not gst else f"bounded-{d}@{gst}"
        self._deadlines: list[tuple[int, int]] = []  # (deadline, uid) heap
        # uid -> (deadline, message); heap pops keep this deadline-ordered.
        self._overdue: dict[int, tuple[int, Message]] = {}

    def reset(self, runtime) -> None:
        self._deadlines = []
        self._overdue = {}

    def on_send(self, msg: Message, step: int) -> None:
        deadline = max(msg.send_step, self.gst) + self.d
        heapq.heappush(self._deadlines, (deadline, msg.uid))

    def on_deliver(self, msg: Message, step: int) -> None:
        self._overdue.pop(msg.uid, None)

    def eligible(self, network: Network, step: int) -> TransitPool:
        heap = self._deadlines
        overdue = self._overdue
        while heap and heap[0][0] <= step:
            deadline, uid = heapq.heappop(heap)
            msg = network.get(uid)
            if msg is not None:
                overdue[uid] = (deadline, msg)
        if overdue:
            # Dropped messages (halted recipients) leave stale uids behind.
            dead = [uid for uid, (_, m) in overdue.items()
                    if network.get(uid) is None]
            for uid in dead:
                del overdue[uid]
        if overdue:
            # Only the earliest-deadline class is deliverable: overdue
            # traffic drains in deadline order, which is what makes the
            # bound a real constraint instead of a large free-for-all pool.
            values = iter(overdue.values())
            first_deadline, first_msg = next(values)
            views = [first_msg.view()]
            for deadline, msg in values:
                if deadline != first_deadline:
                    break
                views.append(msg.view())
            return views
        return network.view()


# -- the timing registry ------------------------------------------------------

TimingBuilder = Callable[[], TimingModel]

TIMING_BUILDERS: dict[str, TimingBuilder] = {
    "async": Asynchronous,
    "asynchronous": Asynchronous,
    "lockstep": LockStep,
    "sync": LockStep,
}


def register_timing(name: str, builder: TimingBuilder) -> None:
    """Register a zero-arg timing-model builder under ``name``."""
    if name in TIMING_BUILDERS:
        raise SimulationError(f"timing model {name!r} is already registered")
    TIMING_BUILDERS[name] = builder


def timing_names() -> list[str]:
    """Registered fixed names (parameterised ``bounded-...`` not included)."""
    return sorted(TIMING_BUILDERS)


def timing_from_name(name: str) -> TimingModel:
    """Build a timing model from a JSON-safe name.

    Fixed names come from the registry (``async``, ``lockstep``, aliases
    and user registrations); ``bounded-<d>`` and ``bounded-<d>@<gst>``
    parse their parameters from the name so scenario grids can sweep the
    delay bound without a side channel.
    """
    builder = TIMING_BUILDERS.get(name)
    if builder is not None:
        return builder()
    if name.startswith("bounded-"):
        params = name[len("bounded-"):]
        gst = 0
        if "@" in params:
            params, gst_text = params.split("@", 1)
            try:
                gst = int(gst_text)
            except ValueError:
                raise SimulationError(
                    f"bad GST in timing name {name!r} (want bounded-<d>@<gst>)"
                ) from None
        try:
            d = int(params)
        except ValueError:
            raise SimulationError(
                f"bad delay bound in timing name {name!r} (want bounded-<d>)"
            ) from None
        return BoundedDelay(d, gst=gst)
    raise SimulationError(
        f"unknown timing model {name!r}; known: "
        f"{', '.join(timing_names())}, bounded-<d>[@<gst>]"
    )
