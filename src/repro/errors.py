"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FieldError(ReproError):
    """Invalid finite-field operation (mixed moduli, zero inverse, ...)."""


class DecodingError(ReproError):
    """Reed-Solomon / interpolation decoding failed (too many errors)."""


class SimulationError(ReproError):
    """The asynchronous simulation reached an invalid internal state."""


class SchedulerError(SimulationError):
    """A scheduler violated its contract (e.g. delivered unknown message)."""


class StepLimitExceeded(SimulationError):
    """The runtime hit its step limit before the run quiesced.

    This normally indicates a livelock in a protocol under test; fair
    schedulers plus terminating protocols should always quiesce.
    """


class GameError(ReproError):
    """Malformed game description (utility table shape, type space, ...)."""


class StrategyError(GameError):
    """A strategy was queried outside its domain."""


class ProtocolError(ReproError):
    """A distributed protocol received an impossible/forbidden message."""


class SecurityViolation(ProtocolError):
    """An invariant that the adversary model promises was broken.

    Raised by verification harnesses, never by honest protocol code paths.
    """


class CheatingDetected(ProtocolError):
    """A MAC/consistency check caught an incorrect share or message.

    For the epsilon-variant engines this is an *expected* runtime event
    (probability <= epsilon under an active adversary); the cheap-talk layer
    converts it into the deadlock/default-move path.
    """


class MediatorError(ReproError):
    """Mediator strategy violated canonical form or circuit constraints."""


class CompilationError(ReproError):
    """Cheap-talk compilation failed (bounds not met, missing punishment)."""


class LintError(ReproError):
    """Invalid ``repro lint`` invocation (unknown rule, bad path/ref).

    Findings are data, not exceptions — this is only for problems with the
    lint run itself.
    """


class StoreError(ReproError):
    """Invalid result-store operation (bad path, corrupt row, schema skew).

    The store's immutability contract — a cell fingerprint is written once
    and never overwritten — is enforced with ``INSERT OR IGNORE``, so
    contract violations surface as silent no-ops, not this error; this is
    only for problems with the store itself.
    """


class ServiceError(ReproError):
    """Invalid job-service operation (unknown job id, malformed JobSpec,
    result requested before the job finished, spool not initialised)."""


class ObsError(ReproError):
    """Invalid telemetry operation (metric kind clash, malformed span JSON,
    unparseable Chrome trace document, profile target failed to start).

    Telemetry is strictly out-of-band: nothing in ``repro.obs`` may alter a
    ``RunRecord`` or stored byte, so this error never signals corrupted
    results — only a misuse of the observability API itself.
    """


class ExperimentError(ReproError):
    """Invalid experiment specification or registry lookup.

    Raised by the ``repro.experiments`` layer for unknown scenarios,
    schedulers, deviation profiles, malformed grids, and theorem/deviation
    combinations that do not make sense together.
    """


class SpecError(ExperimentError):
    """A scenario document does not parse into a :class:`ScenarioSpec`.

    Raised by ``ScenarioSpec.from_dict`` for unknown top-level keys — the
    message lists the accepted fields so stored PR-era documents that
    predate (or postdate) a spec axis fail loudly instead of silently
    dropping data. Subclasses :class:`ExperimentError` so existing callers
    that catch spec problems keep working.
    """


class NetError(ReproError):
    """Invalid real-network substrate operation (``repro.net``).

    Unknown latency-model names, transport wiring failures, and a TCP
    transport that stops making progress all surface here. Protocol-level
    problems keep their existing types (:class:`SimulationError` etc.) so
    a net run fails the same way a simulated run does.
    """


class FaultError(ReproError):
    """Invalid fault-injection operation (``repro.faults``).

    Unknown fault-plan names, malformed plan parameters (a crash step that
    never arrives, a partition that heals before it starts), and plans that
    target pids a scenario does not have all surface here. Failures *caused
    by* an injected fault are not errors at all — they are the experiment.
    """
