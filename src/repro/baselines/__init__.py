"""Baselines the paper compares against."""

from repro.baselines.egl import EglParty, run_egl, expected_messages

__all__ = ["EglParty", "run_egl", "expected_messages"]
