"""Even–Goldreich–Lempel-style baseline: ε-mediation with O(1/ε) messages.

The paper (Section 1) contrasts its punishment-based protocols — a bounded
number of messages, independent of ε — with Even, Goldreich and Lempel's
randomized-exchange technique, whose expected message count is O(1/ε).

The construction reproduced here is the classic *hidden decisive round*
exchange for two players sampling a correlated-equilibrium cell:

* a decisive round r* is drawn geometrically with parameter ε (from dealt
  setup randomness — the same substitution as the MPC engines' offline
  material);
* in each round the parties exchange fresh random contributions; the cell
  is determined by the contributions of round r*, but neither party learns
  that a given round was decisive until the following round;
* a party that aborts early can bias the outcome only if it aborts exactly
  at the decisive round, which happens with probability ≤ ε.

Expected messages: each round costs 2 messages and E[r*] = 1/ε, so the
expected total is ≈ 2/ε + O(1) — the O(1/ε) behaviour the benchmark
measures against the bounded-message punishment compiler.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import ProtocolError
from repro.games.library import GameSpec
from repro.sim import Runtime, Scheduler, FifoScheduler
from repro.sim.process import Context, Process
from repro.utils.rng import derive_seed


class EglParty(Process):
    """One of the two parties in the EGL-style exchange.

    Both parties know the cell list and the (dealt) decisive round r*; the
    *outcome* of round r* combines both parties' round-r* contributions, so
    neither controls it alone. Termination: after round r* completes, both
    parties decode their component of the sampled cell and halt.
    """

    def __init__(
        self,
        pid: int,
        other: int,
        cells: Sequence[tuple],
        decisive_round: int,
        component: int,
    ) -> None:
        self.pid = pid
        self.other = other
        self.cells = list(cells)
        self.decisive_round = decisive_round
        self.component = component
        self.round = 0
        self.my_contributions: dict[int, int] = {}
        self.their_contributions: dict[int, int] = {}

    def _contribute(self, ctx: Context) -> None:
        value = ctx.rng.randrange(len(self.cells))
        self.my_contributions[self.round] = value
        ctx.send(self.other, ("egl", self.round, value))

    def on_start(self, ctx: Context) -> None:
        self._contribute(ctx)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if sender != self.other or not isinstance(payload, tuple):
            return
        _, r, value = payload
        self.their_contributions[r] = value
        # Channels are asynchronous: a later round's contribution may arrive
        # first, so drain every round that is now unblocked.
        while self.round in self.their_contributions:
            if self.round == self.decisive_round:
                total = (
                    self.my_contributions[self.round]
                    + self.their_contributions[self.round]
                ) % len(self.cells)
                cell = self.cells[total]
                ctx.output(cell[self.component])
                ctx.halt()
                return
            self.round += 1
            self._contribute(ctx)


def run_egl(
    spec: GameSpec,
    epsilon: float,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
) -> tuple[tuple, int]:
    """One EGL exchange for a 2-player correlated equilibrium.

    Returns (action profile, messages sent). ``spec.mediator_dist`` must be
    uniform over its cells (chicken qualifies).
    """
    if spec.game.n != 2:
        raise ProtocolError("EGL baseline is a 2-party protocol")
    if not (0 < epsilon <= 1):
        raise ProtocolError(f"epsilon must be in (0,1], got {epsilon}")
    dist = spec.mediator_dist(spec.game.type_space.profiles()[0])
    cells = sorted(dist)
    probs = [dist[c] for c in cells]
    if max(probs) - min(probs) > 1e-9:
        raise ProtocolError("EGL baseline needs a uniform correlated cell")

    import random

    setup_rng = random.Random(derive_seed(seed, "egl-decisive"))
    decisive = 0
    while setup_rng.random() >= epsilon:
        decisive += 1

    procs = {
        0: EglParty(0, 1, cells, decisive, component=0),
        1: EglParty(1, 0, cells, decisive, component=1),
    }
    runtime = Runtime(procs, scheduler or FifoScheduler(), seed=seed)
    result = runtime.run()
    actions = (result.outputs.get(0), result.outputs.get(1))
    return actions, result.trace.message_count()


def expected_messages(
    spec: GameSpec, epsilon: float, trials: int = 50, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected message count at ε."""
    total = 0
    for trial in range(trials):
        _, messages = run_egl(spec, epsilon, seed=seed + trial)
        total += messages
    return total / trials
