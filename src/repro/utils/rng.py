"""Deterministic hierarchical randomness.

Every stochastic component of a simulation (each player, the mediator, the
scheduler, the setup dealer) draws from its own :class:`random.Random`
instance whose seed is derived from a single master seed plus a label path.
This makes whole experiments reproducible from one integer while keeping the
streams statistically independent of each other.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def derive_seed(master: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``master`` and a label path.

    The derivation is a SHA-256 hash of the master seed and the repr of each
    label, so distinct label paths give (cryptographically) independent
    seeds and the mapping is stable across processes and Python versions.
    """
    hasher = hashlib.sha256()
    hasher.update(str(master).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(repr(label).encode())
    return int.from_bytes(hasher.digest()[:8], "big")


class RngTree:
    """A node in a deterministic randomness tree.

    ``RngTree(seed)`` is the root; ``tree.child(label)`` derives a child node
    and ``tree.rng`` is the node's own :class:`random.Random` stream.
    """

    def __init__(self, seed: int, _path: tuple[object, ...] = ()) -> None:
        self.seed = seed
        self._path = _path
        self.rng = random.Random(derive_seed(seed, *_path, "stream"))

    def child(self, *labels: object) -> "RngTree":
        """Return the child node at ``labels`` (deterministic in labels)."""
        return RngTree(self.seed, self._path + tuple(labels))

    def shuffled(self, items: Iterable) -> list:
        """Return a new list with ``items`` shuffled by this node's stream."""
        out = list(items)
        self.rng.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(seed={self.seed}, path={self._path!r})"
