"""Deterministic hierarchical randomness.

Every stochastic component of a simulation (each player, the mediator, the
scheduler, the setup dealer) draws from its own :class:`random.Random`
instance whose seed is derived from a single master seed plus a label path.
This makes whole experiments reproducible from one integer while keeping the
streams statistically independent of each other.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


_SEED_MEMO: dict[tuple, int] = {}
_SEED_MEMO_MAX = 65536


def derive_seed(master: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``master`` and a label path.

    The derivation is a SHA-256 hash of the master seed and the repr of each
    label, so distinct label paths give (cryptographically) independent
    seeds and the mapping is stable across processes and Python versions.
    Derivations are memoized per process: sweeps re-derive the same
    (seed, path) pairs for every grid cell, and the mapping is pure. The
    memo keys on the label *reprs* — what the hash actually consumes — so
    equal-but-distinct-repr labels (``1`` vs ``1.0``) never collide.
    """
    key = (master, tuple(repr(label) for label in labels))
    cached = _SEED_MEMO.get(key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(str(master).encode())
    for label_repr in key[1]:
        hasher.update(b"/")
        hasher.update(label_repr.encode())
    derived = int.from_bytes(hasher.digest()[:8], "big")
    if len(_SEED_MEMO) >= _SEED_MEMO_MAX:
        _SEED_MEMO.clear()
    _SEED_MEMO[key] = derived
    return derived


class RngTree:
    """A node in a deterministic randomness tree.

    ``RngTree(seed)`` is the root; ``tree.child(label)`` derives a child node
    and ``tree.rng`` is the node's own :class:`random.Random` stream (created
    lazily — many nodes are only ever used to derive children).
    """

    def __init__(self, seed: int, _path: tuple[object, ...] = ()) -> None:
        self.seed = seed
        self._path = _path
        self._rng: random.Random | None = None

    @property
    def rng(self) -> random.Random:
        if self._rng is None:
            self._rng = random.Random(
                derive_seed(self.seed, *self._path, "stream")
            )
        return self._rng

    def child(self, *labels: object) -> "RngTree":
        """Return the child node at ``labels`` (deterministic in labels)."""
        return RngTree(self.seed, self._path + tuple(labels))

    def shuffled(self, items: Iterable) -> list:
        """Return a new list with ``items`` shuffled by this node's stream."""
        out = list(items)
        self.rng.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(seed={self.seed}, path={self._path!r})"
