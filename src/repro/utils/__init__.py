"""Small shared helpers: deterministic RNG streams and misc utilities."""

from repro.utils.rng import RngTree, derive_seed

__all__ = ["RngTree", "derive_seed"]
