"""Plain-text rendering for reports and experiment tables.

Everything in the analysis layer returns structured report objects; this
module turns them into aligned text tables for the CLI, the examples, and
the benchmark output files.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], pad: int = 2
) -> str:
    """Render rows as an aligned text table with a header rule."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = " " * pad

    def line(cells):
        return sep.join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_solution_report(report) -> str:
    """Render a :class:`~repro.games.solution.SolutionReport`."""
    lines = [
        f"{report.concept}: {'HOLDS' if report.holds else 'VIOLATED'} "
        f"({report.checks} checks"
        + (
            f", margin {report.margin:.4g})"
            if report.margin not in (None, float('inf'))
            else ")"
        )
    ]
    for violation in report.violations[:10]:
        lines.append(
            f"  - coalition {violation.coalition} malicious "
            f"{violation.malicious} types {violation.types}: "
            f"{violation.detail}"
        )
    if len(report.violations) > 10:
        lines.append(f"  ... and {len(report.violations) - 10} more")
    return "\n".join(lines)


def format_run(run, utility=None) -> str:
    """One-line summary of a MediatorRun-like object."""
    payoff = ""
    if utility is not None:
        payoff = f" payoffs={utility(run.types, run.actions)}"
    return (
        f"types={run.types} actions={run.actions} "
        f"messages={run.message_count()}{payoff}"
    )


def format_outcome_samples(samples: dict, max_rows: int = 8) -> str:
    """Render {types: [action profiles]} as frequency tables."""
    blocks = []
    for types, rows in samples.items():
        counts: dict[tuple, int] = {}
        for row in rows:
            counts[tuple(row)] = counts.get(tuple(row), 0) + 1
        table = format_table(
            ["outcome", "freq"],
            [
                (outcome, f"{count / len(rows):.3f}")
                for outcome, count in sorted(
                    counts.items(), key=lambda kv: -kv[1]
                )[:max_rows]
            ],
        )
        blocks.append(f"types {types}:\n{table}")
    return "\n\n".join(blocks)
