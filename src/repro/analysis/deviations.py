"""A library of deviation strategies for mediator and cheap-talk games.

Mediator-game deviations have signature ``factory(pid, own_type) -> Process``
(the :class:`~repro.mediator.games.MediatorGame` convention); cheap-talk
deviations take ``factory(pid, own_type, config) -> Process`` (they may need
the host config to participate in the protocol while misbehaving).

The catalogue covers the behaviours the paper's adversary can combine:
crashing, lying about inputs, sending corrupted protocol data, stalling
mid-protocol, selective silence toward a subset of players, and the
Section 6.1 covert-channel signalling to the environment via self-messages.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.cheaptalk.game import CheapTalkPlayer
from repro.mediator.protocol import HonestMediatorPlayer, mediator_pid
from repro.mpc.engine import MpcEngine
from repro.sim.process import Context, Process


# ---------------------------------------------------------------------------
# The uniform factory adapter
# ---------------------------------------------------------------------------

def _accepts_config(factory: Callable) -> bool:
    """Does ``factory`` expect the cheap-talk ``(pid, own_type, config)``?"""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables: assume modern
        return True
    positional = 0
    for param in sig.parameters.values():
        if param.kind == param.VAR_POSITIONAL:
            return True
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
    return positional >= 3


class UniformDeviation:
    """One call shape over the two deviation-factory arities.

    Mediator-game factories take ``(pid, own_type)``; cheap-talk factories
    take ``(pid, own_type, config)``. Wrapping either in this adapter yields
    a callable that accepts *both* shapes — ``config`` defaults to ``None``
    and is forwarded only when the underlying factory wants it — so the
    audit strategy space (and anything else composing deviations across run
    modes) can treat every factory identically. Raw factories keep working
    everywhere they did before; the adapter is purely additive.
    """

    __slots__ = ("factory", "_takes_config")

    def __init__(self, factory: Callable) -> None:
        if isinstance(factory, UniformDeviation):
            factory = factory.factory
        self.factory = factory
        self._takes_config = _accepts_config(factory)

    def __call__(self, pid: int, own_type: Any, config: Any = None):
        if self._takes_config:
            return self.factory(pid, own_type, config)
        return self.factory(pid, own_type)


def unify_profile(profile: Mapping[int, Callable]) -> dict[int, UniformDeviation]:
    """Wrap every factory of a ``{pid: factory}`` profile in the adapter."""
    return {pid: UniformDeviation(factory) for pid, factory in profile.items()}


# ---------------------------------------------------------------------------
# Generic processes
# ---------------------------------------------------------------------------

class Crash(Process):
    """Never sends anything."""

    def on_message(self, ctx, sender, payload):
        pass


class StallAfter(Process):
    """Behave exactly like ``inner`` until ``limit`` activations, then stop.

    This is the canonical deadlock-forcing deviation for the punishment
    theorems: the deviator participates long enough to be depended upon,
    then goes silent.
    """

    def __init__(self, inner: Process, limit: int) -> None:
        self.inner = inner
        self.limit = limit
        self.activations = 0

    def on_start(self, ctx):
        self.activations += 1
        if self.activations <= self.limit:
            self.inner.on_start(ctx)

    def on_message(self, ctx, sender, payload):
        self.activations += 1
        if self.activations <= self.limit:
            self.inner.on_message(ctx, sender, payload)

    def on_deadlock(self, pid):
        return self.inner.on_deadlock(pid)


class CovertSignaller(Process):
    """Section 6.1's covert channel: encode observations in self-messages.

    After each delivered message, sends ``encode(payload)`` empty messages
    to itself, letting a colluding environment count them. Used by the
    coordination experiments (E12).
    """

    def __init__(self, inner: Process, encode: Callable[[Any], int]) -> None:
        self.inner = inner
        self.encode = encode

    def on_start(self, ctx):
        self.inner.on_start(ctx)

    def on_message(self, ctx, sender, payload):
        if payload != "__tick__":
            for _ in range(self.encode(payload)):
                ctx.send(ctx.pid, "__tick__")
            self.inner.on_message(ctx, sender, payload)

    def on_deadlock(self, pid):
        return self.inner.on_deadlock(pid)


# ---------------------------------------------------------------------------
# Mediator-game deviations: factory(pid, own_type) -> Process
# ---------------------------------------------------------------------------

def crash() -> Callable:
    return lambda pid, own_type: Crash()


def misreport(spec, fake_type: Any, will=None) -> Callable:
    """Report ``fake_type`` to the mediator but keep the true default move."""

    def factory(pid, own_type):
        player = HonestMediatorPlayer(spec, pid, fake_type, will=will)
        player.own_type = fake_type
        return player

    return factory


def stall_after_messages(spec, limit: int, will=None) -> Callable:
    def factory(pid, own_type):
        return StallAfter(
            HonestMediatorPlayer(spec, pid, own_type, will=will), limit
        )

    return factory


def disobedient(spec, remap: Callable[[Any], Any], will=None) -> Callable:
    """Follow the protocol but play ``remap(recommendation)`` at the end."""

    class Disobedient(HonestMediatorPlayer):
        def on_message(self, ctx, sender, payload):
            if (
                sender == mediator_pid(spec.game.n)
                and isinstance(payload, tuple)
                and payload[0] == "stop"
            ):
                if not ctx.has_output():
                    ctx.output(remap(payload[1]))
                ctx.halt()
                return
            super().on_message(ctx, sender, payload)

    return lambda pid, own_type: Disobedient(spec, pid, own_type, will=will)


# ---------------------------------------------------------------------------
# Cheap-talk deviations: factory(pid, own_type, config) -> Process
# ---------------------------------------------------------------------------

def ct_crash() -> Callable:
    return lambda pid, own_type, config: Crash()


def ct_misreport(spec, fake_type: Any, will=None) -> Callable:
    """Feed a forged input into the MPC engine."""

    def factory(pid, own_type, config):
        forged = dict(config)
        forged["mpc_input"] = spec.encode_type(fake_type)
        return CheapTalkPlayer(spec, pid, own_type, forged, will=will)

    return factory


class _LyingEngine(MpcEngine):
    """Engine variant adding an offset to every opening share it sends."""

    LIE_OFFSET = 3

    def _ensure_open(self, key, share, private_to=None):
        opening = self._opening(key, private_to)
        if opening.announced:
            return
        opening.announced = True
        opening.mine = share
        value = share.my_value(self.pack) + self.field(self.LIE_OFFSET)
        recipients = [private_to] if private_to is not None else self.peers
        for recipient in recipients:
            mac = None
            if self.mode == "bkr":
                mac = share.my_mac_for(recipient, self.pack)
            self.send(
                recipient,
                ("osh", key, int(value), None if mac is None else int(mac)),
            )
        self._try_resolve(key)


def ct_lying_shares(spec, will=None) -> Callable:
    """Send corrupted shares in every opening (defeated by EC or MACs)."""

    from repro.cheaptalk.game import ENGINE_SID

    def factory(pid, own_type, config):
        player = CheapTalkPlayer(spec, pid, own_type, config, will=will)
        original_kick = player._kick

        def kick(host):
            host.open_session(ENGINE_SID, cls=_LyingEngine)
            original_kick(host)

        player.on_ready = kick
        return player

    return factory


def ct_stall_after(spec, limit: int, will=None) -> Callable:
    """Participate honestly for ``limit`` activations, then go silent."""

    def factory(pid, own_type, config):
        return StallAfter(
            CheapTalkPlayer(spec, pid, own_type, config, will=will), limit
        )

    return factory


class _SelectiveSilenceHost(CheapTalkPlayer):
    """Honest computation, but never sends to the victim set."""

    victims: frozenset[int] = frozenset()

    def session_send(self, sid, recipient, payload):
        if recipient in self.victims:
            return
        super().session_send(sid, recipient, payload)


def ct_selective_silence(spec, victims: Iterable[int], will=None) -> Callable:
    victim_set = frozenset(victims)

    def factory(pid, own_type, config):
        player = _SelectiveSilenceHost(spec, pid, own_type, config, will=will)
        player.victims = victim_set
        return player

    return factory
