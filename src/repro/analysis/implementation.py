"""Implementation and ε-implementation checking (paper, Section 2).

``σ_CT`` implements ``σ + σ_d`` when the two games induce the same *set* of
type→Δ(action) maps over all environments. Empirically we compare the maps
induced by a finite environment family, pooled (for the "sets are equal"
reading over the family) and per-environment (a stricter diagnostic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.games.outcomes import outcome_map_distance
from repro.sim import Scheduler


@dataclass
class ImplementationReport:
    epsilon: float
    distance: float
    tolerance: float
    holds: bool
    per_scheduler: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def empirical_map(samples: Mapping[tuple, Sequence[tuple]]) -> dict:
    """Samples ({types: [action profiles]}) -> empirical outcome map."""
    out = {}
    for types, rows in samples.items():
        dist: dict[tuple, float] = {}
        weight = 1.0 / len(rows)
        for row in rows:
            key = tuple(row)
            dist[key] = dist.get(key, 0.0) + weight
        out[tuple(types)] = dist
    return out


def implementation_distance(
    game_a,
    game_b,
    schedulers: Sequence[Scheduler],
    samples_per_scheduler: int = 16,
    type_profiles: Optional[Sequence[tuple]] = None,
    seed: int = 0,
) -> float:
    """Pooled empirical distance between the two games' outcome maps."""
    samples_a = game_a.sample_outcomes(
        schedulers, samples_per_scheduler, type_profiles=type_profiles,
        seed=seed,
    )
    samples_b = game_b.sample_outcomes(
        schedulers, samples_per_scheduler, type_profiles=type_profiles,
        seed=seed + 1,
    )
    return outcome_map_distance(empirical_map(samples_a), empirical_map(samples_b))


def check_implementation(
    cheap_talk_game,
    mediator_game,
    epsilon: float = 0.0,
    schedulers: Optional[Sequence[Scheduler]] = None,
    samples_per_scheduler: int = 24,
    type_profiles: Optional[Sequence[tuple]] = None,
    seed: int = 0,
) -> ImplementationReport:
    """Empirical (ε-)implementation check.

    ``epsilon = 0`` checks plain implementation (distance within sampling
    tolerance); ``epsilon > 0`` allows the extra ε. Per-scheduler distances
    are also recorded: under a (k,t)-robust profile they should coincide
    (scheduler-proofness makes every environment induce the same map).
    """
    from repro.sim import scheduler_zoo

    if schedulers is None:
        schedulers = scheduler_zoo(
            seed=seed, parties=range(cheap_talk_game.spec.game.n)
        )
    pooled = implementation_distance(
        cheap_talk_game, mediator_game, schedulers,
        samples_per_scheduler, type_profiles, seed,
    )
    per_scheduler = {}
    for scheduler in schedulers:
        per_scheduler[scheduler.name] = implementation_distance(
            cheap_talk_game, mediator_game, [scheduler],
            samples_per_scheduler, type_profiles, seed,
        )
    total_samples = samples_per_scheduler * len(schedulers)
    tolerance = 3.0 * (4.0 / max(total_samples, 1)) ** 0.5
    holds = pooled <= epsilon + tolerance
    return ImplementationReport(
        epsilon=epsilon,
        distance=pooled,
        tolerance=tolerance,
        holds=holds,
        per_scheduler=per_scheduler,
    )
