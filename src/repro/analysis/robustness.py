"""Empirical (Monte-Carlo) robustness checking for extension games.

The exact checkers in :mod:`repro.games.solution` and
:mod:`repro.mediator.ideal` handle the underlying and ideal mediator games;
the *message-level* extension games (concrete mediator protocol, cheap
talk) are checked here by running them. The harness compares the average
utility of coalition members under each catalogued deviation against their
honest-play utility: the profile is empirically (k,t)-robust over the
catalogue if no deviation raises every deviating member's payoff by more
than the sampling tolerance, and empirically t-immune if no deviation
lowers any outsider's payoff by more than the tolerance.

A finding here is a genuine counterexample strategy (up to sampling noise);
passing certifies robustness *over the catalogue*, the standard empirical
complement to the exact ideal-game certification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.games.outcomes import empirical_utilities
from repro.sim import Scheduler


@dataclass
class DeviationTrial:
    """One catalogued adversary: who deviates and how."""

    name: str
    deviations: Mapping[int, Callable]
    rational: tuple[int, ...] = ()
    """Members whose *gain* is the robustness question (the coalition K)."""

    malicious: tuple[int, ...] = ()
    """Members exempt from the gain test but bound by t-immunity (set T)."""


@dataclass
class EmpiricalRobustnessReport:
    game_name: str
    holds: bool = True
    tolerance: float = 0.0
    findings: list[str] = field(default_factory=list)
    measurements: dict[str, dict] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def average_utilities(
    game,
    schedulers: Sequence[Scheduler],
    samples_per_scheduler: int = 8,
    deviations: Optional[Mapping[int, Callable]] = None,
    seed: int = 0,
    type_profiles: Optional[Sequence[tuple]] = None,
) -> tuple[float, ...]:
    """Mean utility vector over runs of an extension game.

    ``game`` is anything with ``spec`` and ``sample_outcomes`` — both
    :class:`~repro.mediator.games.MediatorGame` and
    :class:`~repro.cheaptalk.game.CheapTalkGame` qualify.
    """
    samples = game.sample_outcomes(
        schedulers,
        samples_per_scheduler=samples_per_scheduler,
        deviations=deviations,
        seed=seed,
        type_profiles=type_profiles,
    )
    return empirical_utilities(game.spec.game, samples)


def check_empirical_robustness(
    game,
    trials: Sequence[DeviationTrial],
    schedulers: Sequence[Scheduler],
    samples_per_scheduler: int = 8,
    tolerance: float = 0.15,
    seed: int = 0,
) -> EmpiricalRobustnessReport:
    """Test the honest profile against a catalogue of deviations.

    For each trial: rational members must not all gain more than
    ``tolerance``; honest outsiders must not lose more than ``tolerance``.
    """
    report = EmpiricalRobustnessReport(
        game_name=game.spec.name, tolerance=tolerance
    )
    baseline = average_utilities(
        game, schedulers, samples_per_scheduler, seed=seed
    )
    report.measurements["baseline"] = {"utilities": baseline}
    n = game.spec.game.n
    for trial in trials:
        deviated = average_utilities(
            game, schedulers, samples_per_scheduler,
            deviations=trial.deviations, seed=seed + 1,
        )
        deviating = set(trial.deviations)
        gains = {i: deviated[i] - baseline[i] for i in trial.rational}
        harms = {
            i: baseline[i] - deviated[i]
            for i in range(n)
            if i not in deviating
        }
        report.measurements[trial.name] = {
            "utilities": deviated,
            "gains": gains,
            "harms": harms,
        }
        if trial.rational and all(
            g > tolerance for g in gains.values()
        ):
            report.holds = False
            report.findings.append(
                f"{trial.name}: coalition {trial.rational} gains {gains}"
            )
        harmed = {i: h for i, h in harms.items() if h > tolerance}
        if harmed:
            report.holds = False
            report.findings.append(
                f"{trial.name}: outsiders harmed {harmed}"
            )
    return report


def scheduler_proofness_spread(
    game,
    schedulers: Sequence[Scheduler],
    samples_per_scheduler: int = 16,
    deviations: Optional[Mapping[int, Callable]] = None,
    seed: int = 0,
) -> dict:
    """Corollary 6.3: per-player utility spread across environments.

    Returns {"per_scheduler": {name: utilities}, "spread": max_i spread_i}.
    A (k,t)-robust profile must have spread ~ sampling noise; a profile
    whose payoff the environment can influence will show a real gap.
    """
    per_scheduler: dict[str, tuple[float, ...]] = {}
    for scheduler in schedulers:
        per_scheduler[scheduler.name] = average_utilities(
            game, [scheduler], samples_per_scheduler,
            deviations=deviations, seed=seed,
        )
    n = game.spec.game.n
    spread = 0.0
    for i in range(n):
        values = [u[i] for u in per_scheduler.values()]
        spread = max(spread, max(values) - min(values))
    return {"per_scheduler": per_scheduler, "spread": spread}
