"""Analysis tooling: deviations, empirical robustness, implementation checks."""

from repro.analysis import deviations
from repro.analysis.implementation import (
    ImplementationReport,
    check_implementation,
    empirical_map,
    implementation_distance,
)
from repro.analysis.robustness import (
    DeviationTrial,
    EmpiricalRobustnessReport,
    average_utilities,
    check_empirical_robustness,
    scheduler_proofness_spread,
)

__all__ = [
    "deviations",
    "ImplementationReport",
    "check_implementation",
    "empirical_map",
    "implementation_distance",
    "DeviationTrial",
    "EmpiricalRobustnessReport",
    "average_utilities",
    "check_empirical_robustness",
    "scheduler_proofness_spread",
]
