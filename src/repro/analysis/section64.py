"""The Section 6.4 attack: leaky mediator + colluding coalition + scheduler.

The paper's counterexample: the mediator for the {0,1,⊥} game leaks
``a + b·i (mod 2)`` to player i before recommending b. A rational coalition
{i, j} with i − j odd pools its leaks, recovers b, and — exactly when b = 0,
where the all-⊥ punishment payoff 1.1 beats the equilibrium payoff 1.0 —
arranges a deadlock so that every honest player's will executes the
punishment. The deadlock is arranged with a *colluding relaxed environment*
(Propositions 6.1/6.2 established that deviators can coordinate with the
environment; Section 6.1 shows how: covert signalling through observable
self-messages). Against the *minimally informative* transform of the same
mediator the attack collapses: b is unknown before the STOP batch, so the
coalition cannot condition, and an unconditional deadlock yields 1.1 < 1.5.

Components:

* :func:`leak_attack` — the coalition's deviation (a mediator-game process
  factory);
* :class:`ColludingScheduler` — a relaxed environment that delivers
  normally until it observes a coalition member's self-message, then stops
  delivering everything (dropping the STOP batch);
* :func:`run_attack` — convenience driver returning per-run payoffs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.games.library import BOT, GameSpec
from repro.mediator.games import MediatorGame
from repro.mediator.protocol import mediator_pid
from repro.sim.network import MessageView, TransitView
from repro.sim.process import Context, Process
from repro.sim.scheduler import FifoScheduler, Scheduler

SIGNAL = "__deadlock_please__"


class LeakAttacker(Process):
    """One member of the Section 6.4 coalition.

    Participates in the protocol honestly, but shares its round-1 leak with
    its partner. Once both leaks are known and ``b = leak_i + leak_j mod 2``
    (valid when i − j is odd) equals ``stall_when`` (the paper's attack
    conditions on b = 0, the default), it signals the colluding environment
    with a self-message and stops cooperating; its own move (made directly,
    or via its will on deadlock) is ⊥. ``stall_when`` is a parameter so the
    audit strategy space can search over the conditioning — the profitable
    direction is something the search must discover, not an input.
    """

    def __init__(
        self,
        spec: GameSpec,
        pid: int,
        own_type,
        partner: int,
        stall_when: int = 0,
    ) -> None:
        self.spec = spec
        self.pid = pid
        self.own_type = own_type
        self.partner = partner
        self.stall_when = stall_when
        self._mediator = mediator_pid(spec.game.n)
        self.my_leak: Optional[int] = None
        self.partner_leak: Optional[int] = None
        self.b: Optional[int] = None
        self.stalled = False

    def on_start(self, ctx: Context) -> None:
        ctx.send(self._mediator, ("report", 0, self.own_type))

    def _consider(self, ctx: Context) -> None:
        if self.b is not None or self.my_leak is None or self.partner_leak is None:
            return
        self.b = (self.my_leak + self.partner_leak) % 2
        if self.b == self.stall_when:
            # With stall_when=0: punishment (1.1) beats following (1.0), so
            # force a deadlock. Conditioning on b=1 instead would trade the
            # 2.0 outcome for 1.1 — strictly worse, and the audit search
            # confirms it empirically.
            self.stalled = True
            ctx.send(ctx.pid, SIGNAL)

    def on_message(self, ctx: Context, sender: int, payload) -> None:
        if self.stalled:
            return
        if sender == self.partner and isinstance(payload, tuple) \
                and payload[0] == "leak":
            self.partner_leak = payload[1]
            self._consider(ctx)
            return
        if sender != self._mediator or not isinstance(payload, tuple):
            return
        kind = payload[0]
        if kind == "round":
            info = payload[2]
            if isinstance(info, int):
                self.my_leak = info
                ctx.send(self.partner, ("leak", info))
                self._consider(ctx)
            if not self.stalled:
                ctx.send(self._mediator, ("report", payload[1], self.own_type))
        elif kind == "stop":
            if not ctx.has_output():
                ctx.output(payload[1])
            ctx.halt()

    def on_deadlock(self, pid: int):
        return BOT  # join the punishment it engineered


def leak_attack(spec: GameSpec, coalition: Sequence[int]):
    """Deviation factories for the coalition (must have odd pid difference)."""
    a, b = sorted(coalition)
    if (b - a) % 2 != 1:
        raise ValueError("Section 6.4 attack needs i - j odd")

    def factory_a(pid, own_type):
        return LeakAttacker(spec, pid, own_type, partner=b)

    def factory_b(pid, own_type):
        return LeakAttacker(spec, pid, own_type, partner=a)

    return {a: factory_a, b: factory_b}


class ColludingScheduler(Scheduler):
    """Relaxed environment colluding with the coalition (Section 6.1/6.2).

    Delivers in FIFO order until a coalition member's self-message appears
    in transit; from then on it stops delivering, dropping everything still
    in flight — in particular the mediator's STOP batch. (Batch atomicity is
    not violated: no STOP message is delivered at all.)
    """

    name = "colluding"

    def __init__(self, coalition: Sequence[int]) -> None:
        self.coalition = frozenset(coalition)
        self._base = FifoScheduler()
        self._tripped = False

    def reset(self, seed: int) -> None:
        self._tripped = False

    def is_relaxed(self) -> bool:
        return True

    def choose(self, in_transit: Sequence[MessageView], step: int):
        if not self._tripped:
            if isinstance(in_transit, TransitView):
                # O(coalition) check against the pool's self-message index.
                self._tripped = any(
                    in_transit.has_self_message(member)
                    for member in self.coalition
                )
            else:
                self._tripped = any(
                    m.sender == m.recipient and m.sender in self.coalition
                    for m in in_transit
                )
        if self._tripped:
            return None
        return self._base.choose(in_transit, step)


def run_attack(
    game: MediatorGame,
    coalition: Sequence[int],
    runs: int = 40,
    seed: int = 0,
) -> list[float]:
    """Run the attack repeatedly; return the coalition's per-run payoff."""
    payoffs = []
    types = game.spec.game.type_space.profiles()[0]
    deviations = leak_attack(game.spec, coalition)
    member = sorted(coalition)[0]
    for r in range(runs):
        run = game.run(
            types,
            ColludingScheduler(coalition),
            seed=seed + r,
            deviations=deviations,
        )
        payoffs.append(game.spec.game.utility(types, run.actions)[member])
    return payoffs
