"""Real-socket transport: asyncio TCP on localhost behind the Router API.

Every node runs a ``StreamServer`` on ``127.0.0.1`` (OS-assigned port) and
every directed edge opens its own client connection, so each protocol
message genuinely crosses a socket as a length-prefixed pickle frame.
Latency is injected by delaying the write: a model delay of ``d`` virtual
units sleeps ``d * time_scale`` wall seconds before the frame goes out.

Arrival order is whatever the kernel's scheduler and loop produce — a real
asynchronous adversary — so TCP runs are *not* byte-deterministic; the
conformance contract for them is payoff/outcome equality only (see
``repro.net.conformance``). The central :class:`~repro.sim.network.Network`
bookkeeping is retained: quiescence is ``len(network) == 0``, and an
``idle_timeout_s`` guard turns a wedged transport into a loud
:class:`~repro.errors.NetError` instead of a hung run.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from functools import partial

from repro.errors import NetError


class TcpTransport:
    """Localhost TCP transport: one server per node, one conn per edge."""

    name = "tcp"
    deterministic = False

    def __init__(
        self, time_scale: float = 0.0005, idle_timeout_s: float = 30.0
    ) -> None:
        if time_scale <= 0:
            raise NetError(f"time_scale must be > 0, got {time_scale}")
        self._time_scale = time_scale
        self._idle_timeout_s = idle_timeout_s
        self._arrived: asyncio.Queue = asyncio.Queue()
        self._servers: list = []
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._pending: set = set()
        self._sent_at: dict[int, float] = {}
        self._t0: float | None = None

    @property
    def now(self) -> float:
        """Elapsed wall time since start, in virtual latency units."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) / self._time_scale

    async def start(self, pids, network) -> None:
        self._t0 = time.monotonic()
        ports: dict[int, int] = {}
        for pid in sorted(pids):
            server = await asyncio.start_server(
                partial(self._serve_peer, pid), "127.0.0.1", 0
            )
            self._servers.append(server)
            ports[pid] = server.sockets[0].getsockname()[1]
        for sender in sorted(pids):
            for recipient in sorted(pids):
                _reader, writer = await asyncio.open_connection(
                    "127.0.0.1", ports[recipient]
                )
                self._writers[(sender, recipient)] = writer

    async def _serve_peer(self, pid, reader, writer) -> None:
        """Server side of one edge: frames in, arrival queue out."""
        try:
            while True:
                header = await reader.readexactly(4)
                frame = await reader.readexactly(int.from_bytes(header, "big"))
                uid, _sender, _recipient, payload = pickle.loads(frame)
                self._arrived.put_nowait((uid, payload))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass

    def post(self, msg, delay: float) -> None:
        self._sent_at[msg.uid] = time.monotonic()
        writer = self._writers.get((msg.sender, msg.recipient))
        if writer is None:
            # Environment-injected start signals have no socket peer (the
            # environment is the dispatcher itself): loop back locally,
            # still honouring the injected delay.
            coro = self._arrive_later(
                msg.uid, msg.payload, delay * self._time_scale
            )
        else:
            frame = pickle.dumps(
                (msg.uid, msg.sender, msg.recipient, msg.payload),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            coro = self._write_later(writer, frame, delay * self._time_scale)
        task = asyncio.get_running_loop().create_task(coro)
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    async def _arrive_later(self, uid, payload, seconds: float) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds)
        self._arrived.put_nowait((uid, payload))

    async def _write_later(self, writer, frame: bytes, seconds: float) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds)
        # One write call per frame: StreamWriter.write appends the whole
        # bytes object to the transport buffer atomically, so concurrent
        # delayed sends on the same edge never interleave mid-frame.
        writer.write(len(frame).to_bytes(4, "big") + frame)
        await writer.drain()

    async def next_delivery(self, network):
        """``(uid, (wire_payload,), observed_delay)`` or None at quiesce.

        The payload that actually crossed the socket is handed back as the
        delivery override, so the protocol runs on wire bytes, not on the
        local object the sender kept.
        """
        while len(network):
            try:
                uid, payload = await asyncio.wait_for(
                    self._arrived.get(), self._idle_timeout_s
                )
            except asyncio.TimeoutError:
                raise NetError(
                    f"tcp transport made no progress for "
                    f"{self._idle_timeout_s}s with {len(network)} messages "
                    f"in transit"
                ) from None
            sent = self._sent_at.pop(uid, None)
            if network.get(uid) is None:
                continue  # dropped (recipient halted) while in flight
            observed = (
                0.0
                if sent is None
                else (time.monotonic() - sent) / self._time_scale
            )
            return uid, (payload,), observed
        return None

    async def stop(self) -> None:
        for task in list(self._pending):
            task.cancel()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        for writer in self._writers.values():
            writer.close()
        for server in self._servers:
            server.close()
        if self._servers:
            await asyncio.gather(
                *(server.wait_closed() for server in self._servers),
                return_exceptions=True,
            )
