"""Real-socket transport: asyncio TCP on localhost behind the Router API.

Every node runs a ``StreamServer`` on ``127.0.0.1`` (OS-assigned port) and
every directed edge opens its own client connection, so each protocol
message genuinely crosses a socket as a CRC-checked, length-prefixed
pickle frame (``len | crc32 | uid | body``). Latency is injected by
delaying the write: a model delay of ``d`` virtual units sleeps
``d * time_scale`` wall seconds before the frame goes out.

Fault injection is physical here: ``kill_node`` closes a node's server
and every socket touching it, ``revive_node`` restarts the server on a
fresh port, and writers re-establish dropped edges through bounded
seeded-jitter exponential backoff (``repro_net_reconnects_total`` /
``repro_net_reconnect_delay`` in obs) instead of failing the run on the
first broken pipe. A ``corrupt-tcp-*`` fault flips body bytes after the
CRC is computed; the receiver detects the mismatch and the message is
dropped — the CRC field never lies about what crossed the wire.

Arrival order is whatever the kernel's scheduler and loop produce — a real
asynchronous adversary — so TCP runs are *not* byte-deterministic; the
conformance contract for them is payoff/outcome equality only (see
``repro.net.conformance``). The central :class:`~repro.sim.network.Network`
bookkeeping is retained: quiescence is ``len(network) == 0``, and an
``idle_timeout_s`` guard turns a wedged transport into a loud
:class:`~repro.errors.NetError` instead of a hung run.
"""

from __future__ import annotations

import asyncio
import pickle
import time
import zlib
from functools import partial
from typing import Optional

from repro.errors import NetError
from repro.obs.metrics import registry as obs_registry
from repro.utils.rng import RngTree

RECONNECT_ATTEMPTS = 5
"""Bounded reconnect budget per frame before the frame counts as lost."""

RECONNECT_BASE_S = 0.05
RECONNECT_CAP_S = 1.0


class TcpTransport:
    """Localhost TCP transport: one server per node, one conn per edge."""

    name = "tcp"
    deterministic = False

    def __init__(
        self,
        time_scale: float = 0.0005,
        idle_timeout_s: float = 30.0,
        seed: int = 0,
        faults=None,
    ) -> None:
        if time_scale <= 0:
            raise NetError(f"time_scale must be > 0, got {time_scale}")
        self._time_scale = time_scale
        self._idle_timeout_s = idle_timeout_s
        self._faults = faults
        self._reconnect_rng = RngTree(seed).child("tcp-reconnect").rng
        self._arrived: asyncio.Queue = asyncio.Queue()
        self._servers: dict[int, asyncio.base_events.Server] = {}
        self._ports: dict[int, int] = {}
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._pending: set = set()
        self._sent_at: dict[int, float] = {}
        self._t0: float | None = None
        self._network = None
        self._down: set[int] = set()

    @property
    def now(self) -> float:
        """Elapsed wall time since start, in virtual latency units."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) / self._time_scale

    async def start(self, pids, network) -> None:
        self._t0 = time.monotonic()
        self._network = network
        for pid in sorted(pids):
            await self._start_server(pid)
        for sender in sorted(pids):
            for recipient in sorted(pids):
                await self._connect_edge(sender, recipient)

    async def _start_server(self, pid: int) -> None:
        server = await asyncio.start_server(
            partial(self._serve_peer, pid), "127.0.0.1", 0
        )
        self._servers[pid] = server
        self._ports[pid] = server.sockets[0].getsockname()[1]

    async def _connect_edge(self, sender: int, recipient: int) -> None:
        _reader, writer = await asyncio.open_connection(
            "127.0.0.1", self._ports[recipient]
        )
        self._writers[(sender, recipient)] = writer

    async def _serve_peer(self, pid, reader, writer) -> None:
        """Server side of one edge: frames in, arrival queue out."""
        try:
            while True:
                header = await reader.readexactly(4)
                frame = await reader.readexactly(int.from_bytes(header, "big"))
                crc = int.from_bytes(frame[:4], "big")
                uid = int.from_bytes(frame[4:12], "big")
                body = frame[12:]
                if zlib.crc32(body) != crc:
                    self._on_corrupt_frame(uid)
                    continue
                _uid, _sender, _recipient, payload = pickle.loads(body)
                self._arrived.put_nowait((uid, payload))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass

    def _on_corrupt_frame(self, uid: int) -> None:
        """A frame failed its CRC: the message it carried is lost."""
        obs_registry().counter(
            "repro_net_corrupt_frames_total",
            "TCP frames that failed their CRC check on arrival.",
        ).inc(transport=self.name)
        network = self._network
        if network is not None and network.get(uid) is not None:
            network.drop(uid)
        # Wake next_delivery so it re-checks quiescence instead of idling
        # out on a message that will never arrive.
        self._arrived.put_nowait((None, None))

    def post(self, msg, delay: float) -> None:
        self._sent_at[msg.uid] = time.monotonic()
        if msg.sender < 0:
            # Environment-injected start signals have no socket peer (the
            # environment is the dispatcher itself): loop back locally,
            # still honouring the injected delay.
            coro = self._arrive_later(
                msg.uid, msg.payload, delay * self._time_scale
            )
        else:
            body = pickle.dumps(
                (msg.uid, msg.sender, msg.recipient, msg.payload),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            crc = zlib.crc32(body)
            if self._faults is not None and self._faults.corrupts(
                msg.sender, msg.recipient
            ):
                # Flip a byte *after* the CRC is computed: the receiver's
                # check fails and the frame is discarded on arrival.
                body = bytes([body[0] ^ 0xFF]) + body[1:]
            frame = (
                crc.to_bytes(4, "big")
                + msg.uid.to_bytes(8, "big")
                + body
            )
            coro = self._write_later(
                msg.sender, msg.recipient, msg.uid, frame,
                delay * self._time_scale,
            )
        task = asyncio.get_running_loop().create_task(coro)
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    async def _arrive_later(self, uid, payload, seconds: float) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds)
        self._arrived.put_nowait((uid, payload))

    async def _write_later(
        self, sender: int, recipient: int, uid: int, frame: bytes,
        seconds: float,
    ) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds)
        data = len(frame).to_bytes(4, "big") + frame
        attempt = 0
        while True:
            writer = self._writers.get((sender, recipient))
            try:
                if writer is None or writer.is_closing():
                    raise ConnectionResetError("edge not connected")
                # One write call per frame: StreamWriter.write appends the
                # whole bytes object to the transport buffer atomically, so
                # concurrent delayed sends on the same edge never
                # interleave mid-frame.
                writer.write(data)
                await writer.drain()
                return
            except (ConnectionError, OSError):
                attempt += 1
                if attempt > RECONNECT_ATTEMPTS:
                    self._on_undeliverable(uid)
                    return
                backoff = min(
                    RECONNECT_BASE_S * 2 ** (attempt - 1), RECONNECT_CAP_S
                )
                # Seeded jitter in [0.5, 1.5) of the exponential step so
                # reconnect storms across edges decorrelate repeatably.
                backoff *= 0.5 + self._reconnect_rng.random()
                metrics = obs_registry()
                metrics.counter(
                    "repro_net_reconnects_total",
                    "TCP edge reconnect attempts after a broken connection.",
                ).inc(transport=self.name, edge=f"{sender}->{recipient}")
                metrics.histogram(
                    "repro_net_reconnect_delay",
                    "Backoff slept before a TCP reconnect attempt, seconds.",
                ).observe(
                    backoff, transport=self.name,
                    edge=f"{sender}->{recipient}",
                )
                await asyncio.sleep(backoff)
                try:
                    await self._connect_edge(sender, recipient)
                except OSError:
                    continue

    def _on_undeliverable(self, uid: int) -> None:
        """Reconnect budget exhausted: the frame (and message) is lost."""
        obs_registry().counter(
            "repro_net_undeliverable_total",
            "TCP frames abandoned after the reconnect budget ran out.",
        ).inc(transport=self.name)
        network = self._network
        if network is not None and network.get(uid) is not None:
            network.drop(uid)
        self._arrived.put_nowait((None, None))

    # -- fault hooks ---------------------------------------------------------

    async def kill_node(self, pid: int) -> None:
        """Physically take a node off the network: close its server and
        every established socket that touches it."""
        self._down.add(pid)
        server = self._servers.pop(pid, None)
        if server is not None:
            server.close()
            await server.wait_closed()
        for edge in [e for e in self._writers if pid in e]:
            self._writers.pop(edge).close()

    async def revive_node(self, pid: int) -> None:
        """Bring a killed node back: fresh server, fresh port; edges are
        re-established lazily by the reconnect path."""
        self._down.discard(pid)
        await self._start_server(pid)

    async def next_delivery(self, network):
        """``(uid, (wire_payload,), observed_delay)`` or None at quiesce.

        The payload that actually crossed the socket is handed back as the
        delivery override, so the protocol runs on wire bytes, not on the
        local object the sender kept.
        """
        while len(network):
            try:
                uid, payload = await asyncio.wait_for(
                    self._arrived.get(), self._idle_timeout_s
                )
            except asyncio.TimeoutError:
                raise NetError(
                    f"tcp transport made no progress for "
                    f"{self._idle_timeout_s}s with {len(network)} messages "
                    f"in transit"
                ) from None
            if uid is None:
                continue  # wake-up sentinel: re-check quiescence
            sent = self._sent_at.pop(uid, None)
            if network.get(uid) is None:
                continue  # dropped (recipient halted) while in flight
            observed = (
                0.0
                if sent is None
                else (time.monotonic() - sent) / self._time_scale
            )
            return uid, (payload,), observed
        return None

    async def stop(self) -> None:
        for task in list(self._pending):
            task.cancel()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        for writer in self._writers.values():
            writer.close()
        for server in self._servers.values():
            server.close()
        if self._servers:
            await asyncio.gather(
                *(server.wait_closed() for server in self._servers.values()),
                return_exceptions=True,
            )
