"""NetRuntime: the asyncio substrate that runs unchanged Process objects.

This is the second runtime next to :class:`repro.sim.runtime.Runtime`. The
protocol layer cannot tell them apart: the same :class:`Process` objects
receive the same :class:`Context` capability object (imported from
``repro.sim.process``), the same :class:`~repro.sim.network.Network` keeps
uid/batch/counter bookkeeping, and the run ends in the same
:class:`~repro.sim.runtime.RunResult` with the kernel's quiesce taxonomy.
What changes is *who decides delivery order*: instead of a scheduler
choosing among eligible uids step by step, every node is a live asyncio
task and a :class:`~repro.net.latency.LatencyModel` decides how long each
message spends in flight.

Determinism contract (invariant 9): with the in-memory transport, a run is
a pure function of ``(processes, latency, seed)`` — latency draws come
from per-edge ``RngTree`` streams and delivery ties break on post order —
so repeat runs are byte-identical and record equivalence against the
simulated kernel is mechanically checkable. The zero-latency schedule *is*
the fifo schedule: the full ``RunResult`` (trace included) matches the
kernel's byte for byte. The TCP transport trades that determinism for real
sockets; only payoffs and outcome taxonomy are comparable there.

Telemetry (per-edge delivery latency, in-flight depth, delivered counts)
goes through ``repro.obs`` strictly out-of-band per invariant 8: metrics
are bumped after delivery bookkeeping exists and never feed back into the
run.
"""

from __future__ import annotations

import asyncio
from contextlib import ExitStack
from typing import Any, Optional, Union

from repro.errors import NetError, SimulationError, StepLimitExceeded
from repro.faults.injector import injector_for
from repro.net.latency import LatencyModel, latency_from_name
from repro.net.router import MemoryTransport, Router
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import span as obs_span
from repro.sim.network import Network, START_SIGNAL
from repro.sim.process import Context, Process
from repro.sim.runtime import ENVIRONMENT_PID, RunResult
from repro.sim.trace import Trace, TraceEvent
from repro.utils.rng import RngTree

TRANSPORTS = ("memory", "tcp")
"""In-memory virtual-clock transport vs. localhost asyncio TCP sockets."""


class NetRuntime:
    """Run processes to completion as asyncio tasks under injected latency.

    Mirrors the :class:`~repro.sim.runtime.Runtime` constructor where the
    concepts coincide; ``scheduler``/``timing`` are replaced by
    ``latency`` (a model instance or a ``latency_from_name`` string) and
    ``transport`` (``"memory"`` or ``"tcp"``).
    """

    def __init__(
        self,
        processes: dict[int, Process],
        latency: Union[LatencyModel, str, None] = None,
        seed: int = 0,
        step_limit: int = 2_000_000,
        mediator_pid: Optional[int] = None,
        record_payloads: bool = False,
        raise_on_step_limit: bool = True,
        rng_namespace: str = "proc",
        record_trace: bool = True,
        transport: str = "memory",
        time_scale: float = 0.0005,
        idle_timeout_s: float = 30.0,
        faults: Any = None,
    ) -> None:
        if not processes:
            raise SimulationError("need at least one process")
        if transport not in TRANSPORTS:
            raise NetError(
                f"unknown transport {transport!r}: choose from {TRANSPORTS}"
            )
        if latency is None:
            latency = LatencyModel()
        elif isinstance(latency, str):
            latency = latency_from_name(latency)
        self.processes = dict(processes)
        self.latency = latency
        self.seed = seed
        self.step_limit = step_limit
        self.mediator_pid = mediator_pid
        self.raise_on_step_limit = raise_on_step_limit
        self.rng_namespace = rng_namespace
        self.transport_name = transport
        self._time_scale = time_scale
        self._idle_timeout_s = idle_timeout_s
        self._faults = injector_for(faults)

        self.network = Network()
        self.trace = Trace(record_payloads=record_payloads)
        self._trace_on = record_trace
        self._contexts: dict[int, Context] = {}
        self.outputs: dict[int, Any] = {}
        self.halted: set[int] = set()
        self.started: set[int] = set()
        self._rng_tree = RngTree(seed)
        self._rngs: dict[int, Any] = {}
        self._step = 0
        self._env_sent = 0
        self._transport = None
        self._router: Optional[Router] = None

    # -- services used by Context (same capability surface as the kernel) --

    def rng_for(self, pid: int):
        if pid not in self._rngs:
            self._rngs[pid] = self._rng_tree.child(self.rng_namespace, pid).rng
        return self._rngs[pid]

    def _context(self, pid: int, batch: int) -> Context:
        ctx = self._contexts.get(pid)
        if ctx is None:
            ctx = Context(self, pid, self._step, batch)
            self._contexts[pid] = ctx
        else:
            ctx.step = self._step
            ctx._batch = batch
        return ctx

    def _send_from(
        self, sender: int, recipient: int, payload: Any, batch: int
    ) -> None:
        if recipient not in self.processes:
            raise SimulationError(f"send to unknown process {recipient}")
        faults = self._faults
        if faults is not None and faults.replaying:
            # Inbox replay after a crash-restart: the pre-crash activations
            # already put these sends on the wire.
            return
        msg = self.network.send(sender, recipient, payload, self._step, batch)
        if self._trace_on:
            self.trace.add(
                TraceEvent(
                    step=self._step,
                    kind="send",
                    pid=sender,
                    sender=sender,
                    recipient=recipient,
                    uid=msg.uid,
                    payload=payload if self.trace.record_payloads else None,
                )
            )
        if recipient in self.halted:
            self.network.drop(msg.uid)
            return
        if faults is not None:
            fate, arg = faults.fate(sender, recipient, self._step)
            if fate == "hold":
                faults.hold(arg, self.network.withdraw(msg.uid))
                return
            if fate == "drop":
                self.network.drop(msg.uid)
                if self._trace_on:
                    self.trace.add(
                        TraceEvent(
                            step=self._step,
                            kind="drop",
                            pid=recipient,
                            sender=sender,
                            recipient=recipient,
                            uid=msg.uid,
                        )
                    )
                return
            copies = arg
        else:
            copies = 1
        self._transport.post(
            msg, self.latency.delay(sender, recipient, self._transport.now)
        )
        for _ in range(copies - 1):
            dup = self.network.send(
                sender, recipient, payload, self._step, batch
            )
            if self._trace_on:
                self.trace.add(
                    TraceEvent(
                        step=self._step,
                        kind="send",
                        pid=sender,
                        sender=sender,
                        recipient=recipient,
                        uid=dup.uid,
                        payload=(
                            payload if self.trace.record_payloads else None
                        ),
                    )
                )
            self._transport.post(
                dup, self.latency.delay(sender, recipient, self._transport.now)
            )

    def _record_output(self, pid: int, action: Any) -> None:
        if self._faults is not None and self._faults.replaying:
            # The pre-crash activation already recorded this output.
            return
        if pid in self.outputs:
            raise SimulationError(f"process {pid} attempted to output twice")
        self.outputs[pid] = action
        if self._trace_on:
            self.trace.add(
                TraceEvent(step=self._step, kind="output", pid=pid,
                           payload=action)
            )

    def _record_halt(self, pid: int) -> None:
        if pid in self.halted:
            return
        self.halted.add(pid)
        if self._trace_on:
            self.trace.add(TraceEvent(step=self._step, kind="halt", pid=pid))
        self.network.discard_to({pid})

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> RunResult:
        """Run to quiescence; synchronous facade over the event loop.

        Must be called from outside any running event loop (it owns one
        via ``asyncio.run``), which is how every experiment-layer caller
        and pool worker invokes runtimes today.
        """
        with obs_span(
            "net-run",
            transport=self.transport_name,
            latency=self.latency.name,
            n=len(self.processes),
        ):
            return asyncio.run(self._run())

    def _make_transport(self):
        if self.transport_name == "tcp":
            from repro.net.tcp import TcpTransport

            return TcpTransport(
                time_scale=self._time_scale,
                idle_timeout_s=self._idle_timeout_s,
                seed=self.seed,
                faults=self._faults,
            )
        return MemoryTransport()

    async def _run(self) -> RunResult:
        self.latency.reset(self.seed)
        faults = self._faults
        if faults is not None:
            faults.reset(self.seed, self.processes)
        self._transport = transport = self._make_transport()
        self._router = router = Router(self.processes)
        metrics = obs_registry()
        all_pids = set(self.processes)
        await transport.start(sorted(self.processes), self.network)
        tasks: list[asyncio.Task] = []
        try:
            with ExitStack() as stack:
                for pid in sorted(self.processes):
                    task = asyncio.create_task(
                        self._node_main(pid, router.inbox(pid)),
                        name=f"net-node-{pid}",
                    )
                    stack.callback(task.cancel)
                    tasks.append(task)
                self._inject_start_signals()
                while True:
                    if self._step >= self.step_limit:
                        if self.raise_on_step_limit:
                            raise StepLimitExceeded(
                                f"no quiescence after {self.step_limit} "
                                f"steps (transport {transport.name})"
                            )
                        break
                    if self.halted >= all_pids:
                        break
                    if faults is not None:
                        due = faults.due_events(self._step)
                        if due:
                            await self._apply_fault_events(due)
                            if self.halted >= all_pids:
                                break
                    delivery = await transport.next_delivery(self.network)
                    if delivery is None:
                        if faults is not None and await self._advance_faults():
                            continue
                        break  # quiesced: nothing left in flight
                    uid, override, observed_delay = delivery
                    if self.network.get(uid) is None:
                        # Withdrawn while in flight (recipient crashed):
                        # the frame arrived but the message no longer
                        # exists — the injector holds or dropped it.
                        continue
                    await self._deliver(
                        uid, override, router, metrics, observed_delay
                    )
        finally:
            await transport.stop()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

        live = set(self.processes) - self.halted
        deadlocked = bool(live) and len(self.network) == 0
        wills = {}
        for pid in sorted(live):
            if pid not in self.outputs and pid != self.mediator_pid:
                wills[pid] = self.processes[pid].on_deadlock(pid)
        return RunResult(
            outputs=dict(self.outputs),
            halted=set(self.halted),
            live=live,
            deadlocked=deadlocked,
            wills=wills,
            trace=self.trace,
            steps=self._step,
            messages_sent=self.network.total_sent,
            messages_delivered=self.network.total_delivered,
            messages_dropped=self.network.total_dropped,
            env_messages=self._env_sent,
        )

    # -- fault application (mirrors the kernel's, plus socket lifecycles) ----

    async def _apply_fault_events(self, events) -> None:
        faults = self._faults
        for event in events:
            if event.kind == "crash":
                await self._apply_crash(event.pid)
            elif event.kind == "restart":
                await self._apply_restart(event.pid)
            else:  # heal
                faults.mark_healed(event.index)
                self._release_and_post(("heal", event.index))

    async def _apply_crash(self, pid: int) -> None:
        faults = self._faults
        if pid in self.halted:
            return  # halted on its own before the fault arrived
        if self._trace_on:
            self.trace.add(TraceEvent(step=self._step, kind="crash", pid=pid))
        kill = getattr(self._transport, "kill_node", None)
        if kill is not None:
            await kill(pid)
        if faults.is_restart_target(pid):
            faults.go_down(pid)
            for msg in self.network.withdraw_to(pid):
                faults.hold(("restart", pid), msg)
        else:
            self._record_halt(pid)

    async def _apply_restart(self, pid: int) -> None:
        """Same recovery semantics as the kernel: pristine copy, inbox
        replay with sends/outputs suppressed, held messages reposted."""
        faults = self._faults
        process = faults.restore(pid)
        if process is None:
            return  # the crash never fired; nothing to recover
        self.processes[pid] = process
        self.started.discard(pid)
        if self._trace_on:
            self.trace.add(
                TraceEvent(step=self._step, kind="restart", pid=pid)
            )
        revive = getattr(self._transport, "revive_node", None)
        if revive is not None:
            await revive(pid)
        faults.replaying = True
        try:
            for sender, payload in faults.inbox_log.get(pid, ()):
                if pid in self.halted:
                    break
                batch = self.network.new_batch()
                ctx = self._context(pid, batch)
                if pid not in self.started:
                    self.started.add(pid)
                    process.on_start(ctx)
                if payload == START_SIGNAL and sender == ENVIRONMENT_PID:
                    continue
                process.on_message(ctx, sender, payload)
        finally:
            faults.replaying = False
        if pid in self.halted:
            faults.release(("restart", pid))
            return  # replay re-halted it; its held messages die with it
        self._release_and_post(("restart", pid))

    def _release_and_post(self, key: tuple) -> None:
        """Reinstate held messages and put them back on the wire."""
        released = self._faults.release(key)
        if not released:
            return
        self.network.reinstate(released)
        stale = {m.recipient for m in released} & self.halted
        if stale:
            self.network.discard_to(stale)
        for msg in sorted(released, key=lambda m: m.uid):
            if msg.recipient in stale:
                continue
            self._transport.post(
                msg,
                self.latency.delay(
                    msg.sender, msg.recipient, self._transport.now
                ),
            )

    async def _advance_faults(self) -> bool:
        """Quiesce pull-forward: fire the earliest pending recovery when
        nothing is left in flight (crashes never fire early)."""
        event = self._faults.pop_recovery()
        if event is None:
            return False
        await self._apply_fault_events([event])
        return True

    # -- internals -----------------------------------------------------------

    def _inject_start_signals(self) -> None:
        for pid in sorted(self.processes):
            batch = self.network.new_batch()
            msg = self.network.send(
                ENVIRONMENT_PID, pid, START_SIGNAL, 0, batch
            )
            self._env_sent += 1
            self._transport.post(
                msg,
                self.latency.delay(ENVIRONMENT_PID, pid, self._transport.now),
            )

    async def _deliver(
        self,
        uid: int,
        override: tuple,
        router: Router,
        metrics,
        observed_delay: float,
    ) -> None:
        msg = self.network.deliver(uid, self._step)
        self._step += 1
        if self._trace_on:
            self.trace.add(
                TraceEvent(
                    step=self._step,
                    kind="deliver",
                    pid=msg.recipient,
                    sender=msg.sender,
                    recipient=msg.recipient,
                    uid=msg.uid,
                    payload=(
                        msg.payload if self.trace.record_payloads else None
                    ),
                )
            )
        if msg.recipient not in self.halted:
            payload = override[0] if override else msg.payload
            if self._faults is not None:
                self._faults.log_delivery(msg.recipient, msg.sender, payload)
            await router.dispatch(msg.recipient, (msg, payload))
        self._observe_delivery(metrics, msg, observed_delay)

    async def _node_main(self, pid: int, inbox: asyncio.Queue) -> None:
        """One per-node consumer task: activate the process per delivery."""
        finish = self._router.finish
        while True:
            msg, payload = await inbox.get()
            try:
                self._activate(pid, msg, payload)
            except Exception as exc:
                finish(exc)
            else:
                finish(None)

    def _activate(self, pid: int, msg, payload: Any) -> None:
        """The kernel's post-delivery activation sequence, verbatim."""
        process = self.processes[pid]
        batch = self.network.new_batch()
        ctx = self._context(pid, batch)
        if pid not in self.started:
            self.started.add(pid)
            if self._trace_on:
                self.trace.add(
                    TraceEvent(step=self._step, kind="start", pid=pid)
                )
            process.on_start(ctx)
        if payload == START_SIGNAL and msg.sender == ENVIRONMENT_PID:
            return
        if pid in self.halted:
            return
        process.on_message(ctx, msg.sender, payload)

    def _observe_delivery(self, metrics, msg, observed_delay: float) -> None:
        """Out-of-band telemetry (invariant 8): after the fact, no feedback."""
        metrics.counter(
            "repro_net_delivered_total",
            "Messages delivered by the real-network substrate.",
        ).inc(transport=self.transport_name)
        metrics.histogram(
            "repro_net_delivery_delay",
            "Per-edge in-flight delay, in virtual latency units.",
        ).observe(
            observed_delay,
            transport=self.transport_name,
            edge=f"{msg.sender}->{msg.recipient}",
        )
        metrics.gauge(
            "repro_net_in_flight",
            "Messages currently in flight on the net substrate.",
        ).set(float(len(self.network)), transport=self.transport_name)
