"""Real-network substrate: the cheap-talk protocols over asyncio.

``repro.net`` is the second runtime next to the simulated kernel
(``repro.sim``): the same :class:`~repro.sim.process.Process` objects run
as per-node asyncio tasks wired through a :class:`~repro.net.router.Router`,
with in-flight time decided by a pluggable
:class:`~repro.net.latency.LatencyModel` instead of a step scheduler. Two
transports sit behind the same interface: a deterministic in-memory
virtual-clock transport (byte-reproducible from the seed) and real
localhost TCP sockets. ``repro.net.conformance`` holds the oracle that
keeps both record-equivalent to the kernel.

Exports are lazy so importing the latency vocabulary (which
``repro.experiments.spec`` validates against) never pulls in asyncio
machinery.
"""

from __future__ import annotations

_LAZY = {
    "LatencyModel": ("repro.net.latency", "LatencyModel"),
    "latency_from_name": ("repro.net.latency", "latency_from_name"),
    "latency_names": ("repro.net.latency", "latency_names"),
    "register_latency": ("repro.net.latency", "register_latency"),
    "Router": ("repro.net.router", "Router"),
    "MemoryTransport": ("repro.net.router", "MemoryTransport"),
    "TcpTransport": ("repro.net.tcp", "TcpTransport"),
    "NetRuntime": ("repro.net.runtime", "NetRuntime"),
    "TRANSPORTS": ("repro.net.runtime", "TRANSPORTS"),
    "CONFORMANCE_FIELDS": ("repro.net.conformance", "CONFORMANCE_FIELDS"),
    "conformance_view": ("repro.net.conformance", "conformance_view"),
    "conformance_diff": ("repro.net.conformance", "conformance_diff"),
    "check_conformance": ("repro.net.conformance", "check_conformance"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return __all__
