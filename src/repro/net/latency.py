"""Pluggable latency models for the real-network substrate.

A :class:`LatencyModel` answers one question: how long does the message a
``sender`` just posted to ``recipient`` spend in flight? Delays are in
*virtual latency units* — the in-memory transport advances a virtual clock
by them directly, the TCP transport multiplies them by its wall-clock
``time_scale`` — so the same model name means the same schedule shape on
both transports.

Naming mirrors :mod:`repro.sim.timing`'s ``timing_from_name`` so a spec's
``latency`` axis stays a plain JSON string:

* ``zero`` — deliver immediately (the fifo-equivalent schedule);
* ``fixed-<d>`` — every edge takes exactly ``d`` units;
* ``lognormal@m<median>s<sigma>`` — per-edge seeded lognormal draws with
  the given median and shape;
* ``gst-<pre>-<post>@<t>`` — GST-style phase shift: uniform-jittered
  delays up to ``pre`` before virtual time ``t``, a fixed ``post`` after.

All stochastic models draw from per-edge :class:`~repro.utils.rng.RngTree`
streams rooted at the run seed (``child("net", "edge", sender,
recipient)``), so an in-memory run is a pure function of ``(spec, seed)``
exactly like a simulated one.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict

from repro.errors import NetError
from repro.utils.rng import RngTree


def _fmt(value: float) -> str:
    """Render a numeric parameter the way the parser accepts it back."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


class LatencyModel:
    """Base class: zero latency, the deterministic reference schedule."""

    name = "zero"

    def reset(self, seed: int) -> None:
        """Re-root the per-edge streams for a new run (idempotent)."""
        self._tree = RngTree(seed)
        self._edge_rngs: dict = {}

    def edge_rng(self, sender: int, recipient: int):
        """The seeded stream owned by the ``sender → recipient`` edge."""
        key = (sender, recipient)
        rng = self._edge_rngs.get(key)
        if rng is None:
            rng = self._tree.child("net", "edge", sender, recipient).rng
            self._edge_rngs[key] = rng
        return rng

    def delay(self, sender: int, recipient: int, now: float) -> float:
        """In-flight time, in virtual latency units (must be >= 0)."""
        return 0.0


class FixedLatency(LatencyModel):
    """Every edge takes exactly ``d`` units — lockstep-like wavefronts."""

    def __init__(self, d: float) -> None:
        if d < 0:
            raise NetError(f"fixed latency must be >= 0, got {d}")
        self.d = float(d)
        self.name = f"fixed-{_fmt(d)}"

    def delay(self, sender: int, recipient: int, now: float) -> float:
        return self.d


class LogNormalLatency(LatencyModel):
    """Per-edge lognormal delays: heavy-tailed, seeded, deterministic."""

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0 or sigma < 0:
            raise NetError(
                f"lognormal latency needs median > 0 and sigma >= 0, "
                f"got median={median} sigma={sigma}"
            )
        self.median = float(median)
        self.sigma = float(sigma)
        self.name = f"lognormal@m{_fmt(median)}s{_fmt(sigma)}"

    def delay(self, sender: int, recipient: int, now: float) -> float:
        rng = self.edge_rng(sender, recipient)
        return rng.lognormvariate(math.log(self.median), self.sigma)


class GstLatency(LatencyModel):
    """GST-style phase shift over virtual time.

    Before the global stabilisation time the network is chaotic: each
    delivery draws a uniform delay in ``[0, pre]`` from its edge stream.
    From ``gst`` on, every edge settles to the fixed bound ``post`` — the
    partial-synchrony picture :class:`~repro.sim.timing.BoundedDelay`
    models in steps, replayed in latency units.
    """

    def __init__(self, pre: float, post: float, gst: float) -> None:
        if pre < 0 or post < 0 or gst < 0:
            raise NetError(
                f"gst latency parameters must be >= 0, got "
                f"pre={pre} post={post} gst={gst}"
            )
        self.pre = float(pre)
        self.post = float(post)
        self.gst = float(gst)
        self.name = f"gst-{_fmt(pre)}-{_fmt(post)}@{_fmt(gst)}"

    def delay(self, sender: int, recipient: int, now: float) -> float:
        if now >= self.gst:
            return self.post
        return self.edge_rng(sender, recipient).uniform(0.0, self.pre)


LatencyBuilder = Callable[[], LatencyModel]

LATENCY_BUILDERS: Dict[str, LatencyBuilder] = {
    "zero": LatencyModel,
}


def register_latency(name: str, builder: LatencyBuilder) -> None:
    """Register a fixed latency-model name (parameterized forms are parsed)."""
    if name in LATENCY_BUILDERS:
        raise NetError(f"latency model {name!r} is already registered")
    LATENCY_BUILDERS[name] = builder


def latency_names() -> list[str]:
    """The fixed (non-parameterized) model names, sorted."""
    return sorted(LATENCY_BUILDERS)


_FIXED_RE = re.compile(r"^fixed-(\d+(?:\.\d+)?)$")
_LOGNORMAL_RE = re.compile(r"^lognormal@m(\d+(?:\.\d+)?)s(\d+(?:\.\d+)?)$")
_GST_RE = re.compile(r"^gst-(\d+(?:\.\d+)?)-(\d+(?:\.\d+)?)@(\d+(?:\.\d+)?)$")


def latency_from_name(name: str) -> LatencyModel:
    """Build a latency model from its spec/CLI name.

    Accepts the registered fixed names plus the parameterized families
    ``fixed-<d>``, ``lognormal@m<median>s<sigma>`` and
    ``gst-<pre>-<post>@<gst>``. The built model's ``.name`` round-trips to
    the input, so specs and stored records stay JSON-stable.
    """
    builder = LATENCY_BUILDERS.get(name)
    if builder is not None:
        return builder()
    match = _FIXED_RE.match(name)
    if match:
        return FixedLatency(float(match.group(1)))
    match = _LOGNORMAL_RE.match(name)
    if match:
        return LogNormalLatency(float(match.group(1)), float(match.group(2)))
    match = _GST_RE.match(name)
    if match:
        return GstLatency(
            float(match.group(1)), float(match.group(2)), float(match.group(3))
        )
    raise NetError(
        f"unknown latency model {name!r}: known models are "
        f"{latency_names()}, plus parameterized forms 'fixed-<d>', "
        f"'lognormal@m<median>s<sigma>' and 'gst-<pre>-<post>@<gst>'"
    )
