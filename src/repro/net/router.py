"""Asyncio message router: per-process send/recv queue pairs.

The wiring follows the HoneyBadgerMPC ``test_router`` idiom: every node
owns an inbox queue, a central dispatcher decides which in-flight message
arrives next, and the node tasks are plain consumers. Determinism for the
in-memory transport comes from two properties:

* the dispatcher pops deliveries from a virtual-clock heap keyed
  ``(delivery_time, sequence)`` — ties broken by post order, which equals
  network uid order — so the delivery schedule is a pure function of the
  latency draws;
* each delivery is a serialized handshake: the dispatcher enqueues the
  message and *awaits* the node's done token before popping the next one,
  so handler side effects (sends, outputs, halts) interleave in exactly
  one order per seed even though every node genuinely runs as its own
  asyncio task.
"""

from __future__ import annotations

import asyncio
from heapq import heappop, heappush
from typing import Optional


class Router:
    """Per-process inbox queues plus the serialized done-token channel."""

    def __init__(self, pids) -> None:
        self._inboxes = {pid: asyncio.Queue() for pid in sorted(pids)}
        self._done: asyncio.Queue = asyncio.Queue()

    def inbox(self, pid: int) -> asyncio.Queue:
        return self._inboxes[pid]

    async def dispatch(self, pid: int, item) -> None:
        """Hand ``item`` to node ``pid`` and wait for its activation to end.

        Re-raises whatever the node's handler raised, so protocol errors
        propagate out of the run loop exactly like in the simulated kernel.
        """
        self._inboxes[pid].put_nowait(item)
        error = await self._done.get()
        if error is not None:
            raise error

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Node side: signal the current activation completed (or failed)."""
        self._done.put_nowait(error)


class MemoryTransport:
    """Deterministic in-memory transport over a virtual latency clock.

    ``post`` schedules a message at ``now + delay``; ``next_delivery``
    pops the earliest entry, advances the virtual clock to it, and skips
    uids the network has since dropped (halt discards). The heap's
    ``(time, seq)`` key makes zero-latency runs replay global send order —
    i.e. the fifo scheduler's schedule — byte for byte.
    """

    name = "memory"
    deterministic = True

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._now = 0.0
        self._posted_at: dict[int, float] = {}

    @property
    def now(self) -> float:
        return self._now

    async def start(self, pids, network) -> None:
        pass

    async def stop(self) -> None:
        pass

    def post(self, msg, delay: float) -> None:
        self._seq += 1
        self._posted_at[msg.uid] = self._now
        heappush(self._heap, (self._now + delay, self._seq, msg.uid))

    async def next_delivery(self, network):
        """``(uid, payload_override, observed_delay)`` or None at quiesce.

        ``payload_override`` is a 0- or 1-tuple: empty means deliver the
        network's canonical payload (always, for this transport).
        """
        while self._heap:
            vtime, _seq, uid = heappop(self._heap)
            posted = self._posted_at.pop(uid, vtime)
            if network.get(uid) is None:
                continue
            self._now = vtime
            return uid, (), vtime - posted
        return None
