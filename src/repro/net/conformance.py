"""Conformance oracle: net runs must agree with the simulated kernel.

This reuses the record-diff methodology from the refactor-verification
workflow (CONTRIBUTING, "Verifying a refactor is behavior-preserving") as
a *runtime equivalence* check: same game, same seed, same protocol ⇒ same
payoffs and same quiesce taxonomy, whether the schedule came from the
kernel's scheduler or from latency draws over asyncio.

Two strengths of claim, matching the two transports:

* in-memory (``runtime="net"``): every run is deterministic, so repeat
  runs must be *fully* byte-identical, and against the kernel the
  order-independent projection below must match on every seed;
* TCP (``runtime="net-tcp"``): arrival order is real-world, so only the
  projection is comparable (the "relaxed timing fields" contract).

The projection deliberately drops the schedule-dependent fields — message
counters, step counts, traces, scheduler/timing/runtime/latency labels,
and wall-clock durations — and keeps exactly what the paper's theorems
speak about: who played what, what it paid, and how the run ended.
"""

from __future__ import annotations

CONFORMANCE_FIELDS = (
    "scenario",
    "theorem",
    "game",
    "deviation",
    "seed",
    "types",
    "actions",
    "payoffs",
    "agreed",
    "deadlocked",
    "error",
    "timed_out",
)
"""Order-independent RunRecord fields: outcome, not schedule."""

_PAIR_KEY = ("game", "deviation", "seed", "types")


def conformance_view(record) -> dict:
    """The order-independent projection of one RunRecord."""
    return {name: getattr(record, name) for name in CONFORMANCE_FIELDS}


def conformance_diff(sim_records, net_records) -> list[str]:
    """Human-readable mismatches between two record lists (empty == pass).

    Records are paired by ``(game, deviation, seed, types)`` after
    sorting, so the two legs may disagree on axis labels (scheduler vs.
    latency) but must cover the same cells.
    """

    def keyed(records):
        return sorted(
            records,
            key=lambda r: tuple(repr(getattr(r, k)) for k in _PAIR_KEY),
        )

    sim_sorted, net_sorted = keyed(sim_records), keyed(net_records)
    if len(sim_sorted) != len(net_sorted):
        return [
            f"record count mismatch: sim leg has {len(sim_sorted)}, "
            f"net leg has {len(net_sorted)}"
        ]
    diffs = []
    for sim_rec, net_rec in zip(sim_sorted, net_sorted):
        sim_view, net_view = (
            conformance_view(sim_rec), conformance_view(net_rec),
        )
        for name in CONFORMANCE_FIELDS:
            if sim_view[name] != net_view[name]:
                diffs.append(
                    f"{sim_rec.game}/{sim_rec.deviation}/seed={sim_rec.seed}: "
                    f"{name} sim={sim_view[name]!r} net={net_view[name]!r}"
                )
    return diffs


def check_conformance(spec, **runner_kwargs) -> dict:
    """Run a net spec and its simulated twin; report the projection diff.

    ``spec`` should carry ``runtime="net"`` (or ``"net-tcp"``); the sim
    leg is the same spec with ``runtime="sim", latency="zero"``. Returns
    ``{"ok", "diffs", "sim", "net"}`` with both ExperimentResults so
    callers can make stronger (byte-level) assertions when the transport
    is deterministic.
    """
    from repro.experiments.runner import ExperimentRunner

    with ExperimentRunner(**runner_kwargs) as runner:
        net_result = runner.run(spec)
        sim_result = runner.run(spec.replace(runtime="sim", latency="zero"))
    diffs = conformance_diff(sim_result.records, net_result.records)
    return {
        "ok": not diffs,
        "diffs": diffs,
        "sim": sim_result,
        "net": net_result,
    }
