"""The client side of the spool protocol: submit, observe, cancel, fetch.

A :class:`JobClient` talks to the same :class:`~repro.service.spool.Spool`
the server drains. Everything is plain file I/O, so a client works with
no server running (jobs just stay queued) and keeps working on a spool
whose server crashed — the spool *is* the API.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.audit.frontier import AuditResult
from repro.errors import ServiceError
from repro.experiments.results import ExperimentResult
from repro.service.jobs import JobSpec, JobStatus
from repro.service.spool import Spool


class JobClient:
    """Submit jobs to a spool and follow their lifecycle."""

    def __init__(self, spool: Spool) -> None:
        self.spool = spool

    def submit(self, spec: JobSpec) -> JobStatus:
        return self.spool.submit(spec)

    def status(self, job_id: str) -> JobStatus:
        return self.spool.read_status(job_id)

    def list_jobs(self) -> list[JobStatus]:
        """Every job the spool knows, oldest submission first."""
        statuses = [self.spool.read_status(jid) for jid in self.spool.job_ids()]
        return sorted(statuses, key=lambda s: (s.submitted_at, s.id))

    def logs(self, job_id: str) -> str:
        return self.spool.read_log(job_id)

    def result_text(self, job_id: str) -> str:
        """The stored result document verbatim (byte-stable across hits)."""
        return self.spool.read_result_text(job_id)

    def result(
        self, job_id: str
    ) -> Union[ExperimentResult, AuditResult]:
        """The parsed result, typed by the job's kind."""
        status = self.spool.read_status(job_id)
        text = self.spool.read_result_text(job_id)
        if status.kind == "scenario":
            return ExperimentResult.from_json(text)
        return AuditResult.from_json(text)

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a job; already-finished jobs are returned unchanged.

        A still-queued job is dequeued here (ticket removed — the remove
        races the server's claim, and exactly one side wins) and marked
        cancelled immediately. A running job gets the cancel marker and
        transitions when the server's progress callback next observes it.
        """
        status = self.spool.read_status(job_id)
        if status.finished:
            return status
        self.spool.request_cancel(job_id)
        if self.spool.remove_ticket(job_id):
            status = status.replace(state="cancelled", finished_at=time.time())
            self.spool.write_status(status)
            return status
        return self.spool.read_status(job_id)

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.1,
    ) -> JobStatus:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status.finished:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (state: {status.state})"
                )
            time.sleep(poll_s)

    def submit_and_wait(
        self,
        spec: JobSpec,
        timeout_s: float = 120.0,
        poll_s: float = 0.1,
    ) -> JobStatus:
        """Submit, then :meth:`wait` — needs a live server to finish."""
        return self.wait(
            self.submit(spec).id, timeout_s=timeout_s, poll_s=poll_s
        )


def make_client(spool_path: Optional[str] = None) -> JobClient:
    """A client over the resolved spool (``--spool`` > env > default)."""
    from repro.service.spool import resolve_spool_path

    return JobClient(Spool(resolve_spool_path(spool_path)))
