"""Long-lived experiment job service over a filesystem spool.

:mod:`repro.service.jobs` defines the JSON job contract,
:mod:`repro.service.spool` the on-disk queue protocol,
:mod:`repro.service.server` the daemon (``repro serve``), and
:mod:`repro.service.client` the client (``repro jobs ...``).

This package legitimately reads wall clocks (job timestamps, daemon
polling, progress throttling) — the ``wallclock`` lint rule carries a
scoped exemption for it; simulation packages remain clock-free.
"""

from repro.service.client import JobClient, make_client
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobSpec,
    JobStatus,
)
from repro.service.server import JobCancelled, JobServer
from repro.service.spool import (
    Spool,
    default_spool_path,
    resolve_spool_path,
)

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobCancelled",
    "JobClient",
    "JobServer",
    "JobSpec",
    "JobStatus",
    "Spool",
    "default_spool_path",
    "make_client",
    "resolve_spool_path",
]
