"""The job server: a daemon loop draining the spool onto one warm runner.

One :class:`JobServer` owns one persistent
:class:`~repro.experiments.runner.ExperimentRunner` (the PR 5 pool — its
workers and artifact caches stay warm across jobs) and, usually, one
:class:`~repro.store.ResultStore`. Every claimed job runs through the
store-aware paths, so the server's answer to a repeated submission is a
store lookup, not a simulation; the per-job counter deltas land in the
job's ``stats["store"]`` as the dedup proof.

Lifecycle: ``queued`` (ticket in the spool) → ``running`` (ticket
claimed; ``status.json`` streams ``done/total`` from the runner's
progress callback) → ``done`` / ``failed`` / ``cancelled``. Cancellation
is cooperative: a marker file checked at claim time and inside the
progress callback — so a running *scenario* aborts between cells, while
audit/frontier jobs (whose engine exposes no callback) only honor
cancellation observed before they start.

Crash safety: every execution bumps ``attempts``, and an attempt felled
by an *unexpected* error with budget left goes back on the queue under a
seeded exponential backoff (the retry ticket's due-timestamp). Domain
errors (:class:`~repro.errors.ReproError` — unknown scenarios, invalid
specs) are deterministic, so retrying cannot help: they fail the job
immediately without burning the budget. At startup
:meth:`JobServer.recover_orphans` scans for jobs a dead server left
claimed — ticket in the job dir, non-terminal state, heartbeat at least
``orphan_after_s`` stale — and requeues them the same way, so a SIGKILL
mid-job costs one attempt, not the job. The runner flushes each finished
cell to the store as it completes, which is what makes the replayed
attempt cheap: the re-run dedups every cell the dead server finished.

While a job runs, all ``status.json`` writes flow through one
:class:`_StatusStream`: it serializes the two concurrent writers (the
progress callback and a periodic heartbeat thread), stamps
``heartbeat_at`` on every write, and tracks the job's current ``phase``
— so ``repro jobs status`` can tell a stuck job from a slow one. The
server also feeds the process-global ``repro.obs`` metrics registry
(queue depth, claim latency, per-state job counts, dedup hits), which
``repro serve --metrics-port`` exposes over HTTP.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import ReproError, ServiceError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ScenarioSpec
from repro.games.registry import FILE_GAME_PREFIX
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import span as obs_span
from repro.service.jobs import JobSpec, JobStatus
from repro.service.spool import Spool
from repro.utils.rng import RngTree


class JobCancelled(Exception):
    """Internal control flow: the job's cancel marker appeared mid-run."""


class _StatusStream:
    """All ``status.json`` writes for one running job, behind one lock.

    Two writers exist while a job runs — the runner's progress callback
    and the heartbeat thread — and the spool's atomic-rename tmp file is
    keyed by pid alone, so unsynchronized writes from two threads of the
    same process could collide. The stream owns the lock and the latest
    status, stamps ``heartbeat_at`` on every write, and re-writes the
    current status every ``interval_s`` even when no progress arrives.
    """

    def __init__(self, spool: Spool, status: JobStatus, interval_s: float):
        self._spool = spool
        self._lock = threading.Lock()
        self._status = status
        self._interval_s = max(interval_s, 0.05)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    def write(self, **changes) -> None:
        with self._lock:
            self._status = self._status.replace(
                heartbeat_at=time.time(), **changes
            )
            self._spool.write_status(self._status)

    def set_phase(self, phase: str) -> None:
        self.write(phase=phase)

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.write()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._beat, name="repro-job-heartbeat", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class JobServer:
    """Claim and execute spool jobs until told to stop.

    ``store=None`` serves without dedup (every job simulates); the CLI
    wires in the resolved store by default. The server owns its runner;
    use it as a context manager (or call :meth:`close`) so the worker
    pool is torn down deliberately.
    """

    def __init__(
        self,
        spool: Spool,
        store=None,
        parallel: bool = False,
        processes: Optional[int] = None,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.2,
        status_interval_s: float = 0.2,
        orphan_after_s: float = 10.0,
        retry_base_s: float = 0.5,
        retry_cap_s: float = 30.0,
    ) -> None:
        self.spool = spool
        self.store = store
        self.poll_s = poll_s
        self.status_interval_s = status_interval_s
        self.orphan_after_s = orphan_after_s
        """A claimed, non-terminal job whose heartbeat is older than this
        is treated as orphaned by a dead server and requeued at startup."""
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        self._runner = ExperimentRunner(
            parallel=parallel,
            processes=processes,
            timeout_s=timeout_s,
            store=store,
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._runner.close()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the daemon loop -----------------------------------------------------

    def serve_forever(
        self,
        max_jobs: Optional[int] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """Drain the queue; returns how many jobs were executed.

        ``max_jobs`` bounds the run (CI smoke uses 1); ``idle_timeout_s``
        exits after that long with an empty queue (tests); with neither,
        the loop runs until the process is killed.
        """
        served = 0
        idle_since = time.monotonic()
        self.recover_orphans()
        queue_depth = obs_registry().gauge(
            "repro_service_queue_depth", "tickets waiting in the spool queue"
        )
        while True:
            queue_depth.set(len(self.spool.queued_tickets()))
            job_id = self.spool.claim_next()
            if job_id is None:
                if idle_timeout_s is not None and (
                    time.monotonic() - idle_since >= idle_timeout_s
                ):
                    return served
                time.sleep(self.poll_s)
                continue
            self.run_job(job_id)
            served += 1
            idle_since = time.monotonic()
            if max_jobs is not None and served >= max_jobs:
                return served

    def run_once(self) -> Optional[str]:
        """Claim and run at most one job; returns its id, or ``None``."""
        job_id = self.spool.claim_next()
        if job_id is not None:
            self.run_job(job_id)
        return job_id

    # -- crash recovery ------------------------------------------------------

    def recover_orphans(self) -> list[str]:
        """Requeue jobs a dead server left claimed; returns their ids.

        An orphan is a job whose ticket was claimed, whose state never
        reached a terminal one, and whose heartbeat is at least
        ``orphan_after_s`` stale — i.e. the server executing it stopped
        writing status and is gone (a fresh heartbeat means some *live*
        server owns it, so it is left alone). Orphans with attempt
        budget left go back on the queue via the atomic ticket rename;
        exhausted ones are marked failed so they stop haunting the queue.
        """
        recovered = []
        now = time.time()
        for job_id in self.spool.claimed_job_ids():
            try:
                status = self.spool.read_status(job_id)
            except ServiceError:
                continue
            if status.finished:
                continue
            last_sign = (
                status.heartbeat_at or status.started_at or status.submitted_at
            )
            age = now - last_sign
            if age < self.orphan_after_s:
                continue
            if status.attempts >= status.max_attempts:
                self.spool.append_log(
                    job_id,
                    f"orphaned (heartbeat {age:.1f}s stale) with no "
                    f"attempts left ({status.attempts}/{status.max_attempts})",
                )
                self._finish(
                    status, "failed",
                    error="server died mid-job; attempt budget exhausted",
                )
                continue
            if not self.spool.requeue(job_id):
                continue  # another recovering server beat us to the rename
            self.spool.write_status(
                status.replace(state="queued", phase="", heartbeat_at=now)
            )
            self.spool.append_log(
                job_id,
                f"requeued: orphaned by a dead server (heartbeat "
                f"{age:.1f}s stale, attempt "
                f"{status.attempts}/{status.max_attempts} lost)",
            )
            obs_registry().counter(
                "repro_service_requeues_total",
                "orphaned jobs returned to the queue",
            ).inc(reason="orphan")
            recovered.append(job_id)
        return recovered

    def _retry_delay_s(self, job_id: str, attempts: int) -> float:
        """Seeded exponential backoff: deterministic per (job, attempt)."""
        rng = RngTree(0).child("service-retry", job_id, attempts).rng
        delay = min(
            self.retry_base_s * (2 ** max(attempts - 1, 0)),
            self.retry_cap_s,
        )
        return delay * (0.5 + rng.random())

    def _fail_or_retry(
        self, stream: "_StatusStream", job_id: str, error: str
    ) -> JobStatus:
        """Terminal failure once the attempt budget is spent, else retry."""
        status = stream.status
        if status.attempts >= status.max_attempts:
            self.spool.append_log(
                job_id,
                f"failed (attempt {status.attempts}/{status.max_attempts}, "
                f"final): {error}",
            )
            return self._finish(status, "failed", error=error, stream=stream)
        return self._retry(stream, job_id, error)

    def _retry(
        self, stream: "_StatusStream", job_id: str, error: str
    ) -> JobStatus:
        """Requeue a failed attempt with backoff (attempt budget permitting)."""
        stream.close()
        status = stream.status
        delay_s = self._retry_delay_s(job_id, status.attempts)
        if not self.spool.requeue(job_id, delay_s=delay_s):
            return self._finish(
                status, "failed",
                error=f"{error} (requeue failed: ticket missing)",
            )
        status = status.replace(
            state="queued", phase="", error=error, heartbeat_at=time.time()
        )
        self.spool.write_status(status)
        self.spool.append_log(
            job_id,
            f"attempt {status.attempts}/{status.max_attempts} failed: "
            f"{error}; retrying in {delay_s:.2f}s",
        )
        obs_registry().counter(
            "repro_service_retries_total",
            "failed attempts sent back to the queue with backoff",
        ).inc()
        return status

    # -- executing one job ---------------------------------------------------

    def run_job(self, job_id: str) -> JobStatus:
        """Execute one already-claimed job through its whole lifecycle."""
        spool = self.spool
        status = spool.read_status(job_id)
        claimed_at = time.time()
        obs_registry().histogram(
            "repro_service_claim_seconds",
            "queue wait: submission to claim",
        ).observe(max(claimed_at - status.submitted_at, 0.0))
        if spool.cancel_requested(job_id):
            status = status.replace(
                state="cancelled", finished_at=time.time()
            )
            spool.write_status(status)
            spool.append_log(job_id, "cancelled before start")
            self._count_job(status)
            return status
        try:
            spec = spool.read_spec(job_id)
        except ServiceError as exc:
            return self._finish(status, "failed", error=str(exc))
        status = status.replace(
            state="running", started_at=claimed_at, phase="starting",
            attempts=status.attempts + 1,
        )
        stream = _StatusStream(spool, status, self.status_interval_s)
        stream.write()
        spool.append_log(
            job_id, f"started: {spec.kind} {spec.title!r}"
            + (f" — {spec.description}" if spec.description else "")
            + (
                f" (attempt {status.attempts}/{status.max_attempts})"
                if status.attempts > 1 else ""
            )
        )
        before = self.store.counters() if self.store is not None else None
        stream.start()
        try:
            with obs_span(
                "job", job_id=job_id, kind=spec.kind, title=spec.title
            ):
                text, total, stats = self._execute(job_id, spec, stream)
        except JobCancelled:
            spool.append_log(job_id, "cancelled while running")
            return self._finish(stream.status, "cancelled", stream=stream)
        except ReproError as exc:
            # Domain errors are deterministic — a retry would only
            # replay the same failure, so fail terminally right away.
            return self._finish(
                stream.status, "failed", error=str(exc), stream=stream
            )
        except Exception as exc:  # noqa: BLE001 — a job must not kill the daemon
            return self._fail_or_retry(
                stream, job_id, f"{type(exc).__name__}: {exc}"
            )
        if before is not None:
            after = self.store.counters()
            stats["store"] = {
                key: after[key] - before[key] for key in sorted(after)
            }
        stream.set_phase("storing")
        spool.write_result_text(job_id, text)
        spool.append_log(
            job_id,
            f"done: {total} unit(s)"
            + (
                f", store {stats['store']}" if "store" in stats else ""
            ),
        )
        if stats.get("result_hit"):
            obs_registry().counter(
                "repro_service_result_hits_total",
                "jobs answered entirely from the store",
            ).inc()
        return self._finish(
            stream.status, "done", done=total, total=total, stats=stats,
            stream=stream,
        )

    def _finish(
        self,
        status: JobStatus,
        state: str,
        error: Optional[str] = None,
        done: Optional[int] = None,
        total: Optional[int] = None,
        stats: Optional[dict] = None,
        stream: Optional["_StatusStream"] = None,
    ) -> JobStatus:
        if stream is not None:
            stream.close()  # stop the heartbeat before the terminal write
        now = time.time()
        status = status.replace(
            state=state,
            finished_at=now,
            heartbeat_at=now,
            phase="",
            error=error,
            done=done if done is not None else status.done,
            total=total if total is not None else status.total,
            stats=stats if stats is not None else status.stats,
        )
        self.spool.write_status(status)
        self._count_job(status)
        return status

    @staticmethod
    def _count_job(status: JobStatus) -> None:
        obs_registry().counter(
            "repro_service_jobs_total", "finished jobs by terminal state"
        ).inc(state=status.state, kind=status.kind)

    def _progress_callback(self, job_id: str, stream: "_StatusStream"):
        """Stream ``done/total`` into status.json; honor the cancel marker.

        Progress writes are throttled to ``status_interval_s`` (final
        update always lands) so tiny fast cells don't turn the spool
        into a write amplifier; liveness between progress writes comes
        from the stream's heartbeat thread, not from here.
        """
        spool = self.spool
        last_write = [0.0]

        def progress(done: int, total: int) -> None:
            if spool.cancel_requested(job_id):
                raise JobCancelled()
            now = time.monotonic()
            if done >= total or now - last_write[0] >= self.status_interval_s:
                last_write[0] = now
                stream.write(state="running", done=done, total=total)

        return progress

    # -- spec materialization ------------------------------------------------

    def _with_game_def(self, spec, job_spec: JobSpec):
        """Stamp an inline GameDef into the spec as a ``file:`` game."""
        if job_spec.game_def is None:
            return spec
        path = self.spool.materialize_game_def(job_spec.game_def)
        return spec.replace(game=f"{FILE_GAME_PREFIX}{path}")

    def _scenario_spec(self, job_spec: JobSpec) -> ScenarioSpec:
        if job_spec.name is not None:
            from repro.experiments.registry import get_scenario

            spec = get_scenario(job_spec.name)
        else:
            spec = ScenarioSpec.from_dict(job_spec.spec)
        return self._with_game_def(spec, job_spec)

    def _audit_spec(self, job_spec: JobSpec):
        from repro.audit.registry import AuditSpec, get_audit

        if job_spec.name is not None:
            spec = get_audit(job_spec.name)
        else:
            spec = AuditSpec.from_dict(job_spec.spec)
        return self._with_game_def(spec, job_spec)

    # -- kind dispatch -------------------------------------------------------

    def _execute(
        self, job_id: str, job_spec: JobSpec, stream: "_StatusStream"
    ) -> tuple[str, int, dict]:
        """Run the job's payload; returns (result text, units, stats)."""
        progress = self._progress_callback(job_id, stream)
        if job_spec.kind == "scenario":
            spec = self._scenario_spec(job_spec)
            stream.set_phase("running")
            if self.store is not None:
                outcome = self.store.get_or_run(
                    spec, runner=self._runner, progress=progress
                )
                result, text, hit = outcome.result, outcome.text, outcome.hit
            else:
                result = self._runner.run(spec, progress=progress)
                text, hit = result.to_json(indent=2), False
            stats = {
                "result_hit": hit,
                "parallel": result.parallel,
            }
            return text, len(result.records), stats
        from repro.audit.frontier import run_audit, run_frontier

        spec = self._audit_spec(job_spec)
        stream.set_phase("auditing")
        hits_before = self.store.result_hits if self.store is not None else 0
        if job_spec.kind == "audit":
            result = run_audit(spec, runner=self._runner, store=self.store)
        else:
            result = run_frontier(
                spec,
                ks=job_spec.ks,
                ts=job_spec.ts,
                runner=self._runner,
                store=self.store,
            )
        hit = (
            self.store is not None and self.store.result_hits > hits_before
        )
        stats = {
            "result_hit": hit,
            "parallel": result.parallel,
        }
        return result.to_json(indent=2), len(result.cells), stats
