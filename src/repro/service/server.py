"""The job server: a daemon loop draining the spool onto one warm runner.

One :class:`JobServer` owns one persistent
:class:`~repro.experiments.runner.ExperimentRunner` (the PR 5 pool — its
workers and artifact caches stay warm across jobs) and, usually, one
:class:`~repro.store.ResultStore`. Every claimed job runs through the
store-aware paths, so the server's answer to a repeated submission is a
store lookup, not a simulation; the per-job counter deltas land in the
job's ``stats["store"]`` as the dedup proof.

Lifecycle: ``queued`` (ticket in the spool) → ``running`` (ticket
claimed; ``status.json`` streams ``done/total`` from the runner's
progress callback) → ``done`` / ``failed`` / ``cancelled``. Cancellation
is cooperative: a marker file checked at claim time and inside the
progress callback — so a running *scenario* aborts between cells, while
audit/frontier jobs (whose engine exposes no callback) only honor
cancellation observed before they start.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ReproError, ServiceError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ScenarioSpec
from repro.games.registry import FILE_GAME_PREFIX
from repro.service.jobs import JobSpec, JobStatus
from repro.service.spool import Spool


class JobCancelled(Exception):
    """Internal control flow: the job's cancel marker appeared mid-run."""


class JobServer:
    """Claim and execute spool jobs until told to stop.

    ``store=None`` serves without dedup (every job simulates); the CLI
    wires in the resolved store by default. The server owns its runner;
    use it as a context manager (or call :meth:`close`) so the worker
    pool is torn down deliberately.
    """

    def __init__(
        self,
        spool: Spool,
        store=None,
        parallel: bool = False,
        processes: Optional[int] = None,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.2,
        status_interval_s: float = 0.2,
    ) -> None:
        self.spool = spool
        self.store = store
        self.poll_s = poll_s
        self.status_interval_s = status_interval_s
        self._runner = ExperimentRunner(
            parallel=parallel,
            processes=processes,
            timeout_s=timeout_s,
            store=store,
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._runner.close()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the daemon loop -----------------------------------------------------

    def serve_forever(
        self,
        max_jobs: Optional[int] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """Drain the queue; returns how many jobs were executed.

        ``max_jobs`` bounds the run (CI smoke uses 1); ``idle_timeout_s``
        exits after that long with an empty queue (tests); with neither,
        the loop runs until the process is killed.
        """
        served = 0
        idle_since = time.monotonic()
        while True:
            job_id = self.spool.claim_next()
            if job_id is None:
                if idle_timeout_s is not None and (
                    time.monotonic() - idle_since >= idle_timeout_s
                ):
                    return served
                time.sleep(self.poll_s)
                continue
            self.run_job(job_id)
            served += 1
            idle_since = time.monotonic()
            if max_jobs is not None and served >= max_jobs:
                return served

    def run_once(self) -> Optional[str]:
        """Claim and run at most one job; returns its id, or ``None``."""
        job_id = self.spool.claim_next()
        if job_id is not None:
            self.run_job(job_id)
        return job_id

    # -- executing one job ---------------------------------------------------

    def run_job(self, job_id: str) -> JobStatus:
        """Execute one already-claimed job through its whole lifecycle."""
        spool = self.spool
        status = spool.read_status(job_id)
        if spool.cancel_requested(job_id):
            status = status.replace(
                state="cancelled", finished_at=time.time()
            )
            spool.write_status(status)
            spool.append_log(job_id, "cancelled before start")
            return status
        try:
            spec = spool.read_spec(job_id)
        except ServiceError as exc:
            return self._finish(status, "failed", error=str(exc))
        status = status.replace(state="running", started_at=time.time())
        spool.write_status(status)
        spool.append_log(
            job_id, f"started: {spec.kind} {spec.title!r}"
            + (f" — {spec.description}" if spec.description else "")
        )
        before = self.store.counters() if self.store is not None else None
        try:
            text, total, stats = self._execute(job_id, spec, status)
        except JobCancelled:
            spool.append_log(job_id, "cancelled while running")
            return self._finish(status, "cancelled")
        except ReproError as exc:
            spool.append_log(job_id, f"failed: {exc}")
            return self._finish(status, "failed", error=str(exc))
        except Exception as exc:  # noqa: BLE001 — a job must not kill the daemon
            message = f"{type(exc).__name__}: {exc}"
            spool.append_log(job_id, f"failed: {message}")
            return self._finish(status, "failed", error=message)
        if before is not None:
            after = self.store.counters()
            stats["store"] = {
                key: after[key] - before[key] for key in sorted(after)
            }
        spool.write_result_text(job_id, text)
        spool.append_log(
            job_id,
            f"done: {total} unit(s)"
            + (
                f", store {stats['store']}" if "store" in stats else ""
            ),
        )
        return self._finish(
            status, "done", done=total, total=total, stats=stats
        )

    def _finish(
        self,
        status: JobStatus,
        state: str,
        error: Optional[str] = None,
        done: Optional[int] = None,
        total: Optional[int] = None,
        stats: Optional[dict] = None,
    ) -> JobStatus:
        status = status.replace(
            state=state,
            finished_at=time.time(),
            error=error,
            done=done if done is not None else status.done,
            total=total if total is not None else status.total,
            stats=stats if stats is not None else status.stats,
        )
        self.spool.write_status(status)
        return status

    def _progress_callback(self, job_id: str, status: JobStatus):
        """Stream ``done/total`` into status.json; honor the cancel marker.

        Status writes are throttled to ``status_interval_s`` (final
        update always lands) so tiny fast cells don't turn the spool
        into a write amplifier.
        """
        spool = self.spool
        last_write = [0.0]

        def progress(done: int, total: int) -> None:
            if spool.cancel_requested(job_id):
                raise JobCancelled()
            now = time.monotonic()
            if done >= total or now - last_write[0] >= self.status_interval_s:
                last_write[0] = now
                spool.write_status(
                    status.replace(state="running", done=done, total=total)
                )

        return progress

    # -- spec materialization ------------------------------------------------

    def _with_game_def(self, spec, job_spec: JobSpec):
        """Stamp an inline GameDef into the spec as a ``file:`` game."""
        if job_spec.game_def is None:
            return spec
        path = self.spool.materialize_game_def(job_spec.game_def)
        return spec.replace(game=f"{FILE_GAME_PREFIX}{path}")

    def _scenario_spec(self, job_spec: JobSpec) -> ScenarioSpec:
        if job_spec.name is not None:
            from repro.experiments.registry import get_scenario

            spec = get_scenario(job_spec.name)
        else:
            spec = ScenarioSpec.from_dict(job_spec.spec)
        return self._with_game_def(spec, job_spec)

    def _audit_spec(self, job_spec: JobSpec):
        from repro.audit.registry import AuditSpec, get_audit

        if job_spec.name is not None:
            spec = get_audit(job_spec.name)
        else:
            spec = AuditSpec.from_dict(job_spec.spec)
        return self._with_game_def(spec, job_spec)

    # -- kind dispatch -------------------------------------------------------

    def _execute(
        self, job_id: str, job_spec: JobSpec, status: JobStatus
    ) -> tuple[str, int, dict]:
        """Run the job's payload; returns (result text, units, stats)."""
        progress = self._progress_callback(job_id, status)
        if job_spec.kind == "scenario":
            spec = self._scenario_spec(job_spec)
            if self.store is not None:
                outcome = self.store.get_or_run(
                    spec, runner=self._runner, progress=progress
                )
                result, text, hit = outcome.result, outcome.text, outcome.hit
            else:
                result = self._runner.run(spec, progress=progress)
                text, hit = result.to_json(indent=2), False
            stats = {
                "result_hit": hit,
                "parallel": result.parallel,
            }
            return text, len(result.records), stats
        from repro.audit.frontier import run_audit, run_frontier

        spec = self._audit_spec(job_spec)
        hits_before = self.store.result_hits if self.store is not None else 0
        if job_spec.kind == "audit":
            result = run_audit(spec, runner=self._runner, store=self.store)
        else:
            result = run_frontier(
                spec,
                ks=job_spec.ks,
                ts=job_spec.ts,
                runner=self._runner,
                store=self.store,
            )
        hit = (
            self.store is not None and self.store.result_hits > hits_before
        )
        stats = {
            "result_hit": hit,
            "parallel": result.parallel,
        }
        return result.to_json(indent=2), len(result.cells), stats
