"""The filesystem spool: the service's queue and per-job state.

Layout under the spool root::

    queue/p<PP>-<SEQ>-<job_id>   one empty ticket file per queued job
    jobs/<job_id>/job.json       the submitted JobSpec
    jobs/<job_id>/status.json    the live JobStatus (atomically replaced)
    jobs/<job_id>/log.txt        appended human-readable progress log
    jobs/<job_id>/result.json    the result document, once done
    jobs/<job_id>/cancel         cancel-request marker
    jobs/<job_id>/game_def.json  materialized inline GameDef, if any

Why a filesystem spool rather than a socket: every transition is an
atomic filesystem operation, so clients and the server need no protocol
beyond POSIX rename semantics — ``os.replace`` for status updates
(readers see old or new bytes, never a torn file), ``os.rename`` to
claim a ticket (exactly one claimant wins), ``os.remove`` of a ticket to
cancel a queued job (the remove and the server's claim race; whichever
succeeds owns the job). It also makes the queue trivially inspectable
and survives both sides crashing.

Ticket names sort lexicographically into scheduling order: the priority
byte pair is ``99 - priority`` (so *higher* priority sorts first) and the
sequence number is the submission timestamp in nanoseconds (FIFO within
a priority class). A *retry* ticket carries a future timestamp — the
seeded-backoff delay — and :meth:`Spool.claim_next` skips tickets whose
time has not come, so a backoff never blocks the rest of the queue.

Crash safety: claiming renames the ticket *into* the job directory, so a
job whose server died mid-run is recognizable forever after — claimed
ticket present, non-terminal state, stale heartbeat. :meth:`Spool.requeue`
is the inverse rename, which is why a server restart can hand the job to
the next claimant without inventing any new state.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.errors import ServiceError
from repro.service.jobs import MAX_PRIORITY, JobSpec, JobStatus
from repro.store.core import DEFAULT_STORE_DIR, ENV_SPOOL
from repro.store.fingerprint import canonical_json, digest


def default_spool_path() -> str:
    return os.path.join(os.path.expanduser(DEFAULT_STORE_DIR), "spool")


def resolve_spool_path(explicit: Optional[str] = None) -> str:
    """Spool precedence: ``--spool PATH`` > ``REPRO_SPOOL`` > the default."""
    if explicit:
        return explicit
    env = os.environ.get(ENV_SPOOL)
    if env:
        return env
    return default_spool_path()


def _write_atomic(path: str, text: str) -> None:
    """Readers of ``path`` see the old bytes or the new — never a tear."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


class Spool:
    """One spool directory, shared by any number of clients + one server.

    (Nothing breaks with several servers either — ticket claiming is
    atomic — but the persistent worker pool makes one server per machine
    the sensible deployment.)
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(root))
        self.queue_dir = os.path.join(self.root, "queue")
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.games_dir = os.path.join(self.root, "games")
        os.makedirs(self.queue_dir, exist_ok=True)
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.games_dir, exist_ok=True)
        self._seq = 0

    # -- paths ---------------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def spec_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "job.json")

    def status_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "status.json")

    def log_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "log.txt")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def cancel_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "cancel")

    def materialize_game_def(self, game_def: dict) -> str:
        """Write an inline GameDef dict to a content-addressed file.

        The path is derived from the *content* (``games/<sha256>.json``),
        so identical inline games from different jobs share one file and
        — because the ``file:`` game name then matches — one result-store
        fingerprint. Existing files are left untouched (same content by
        construction).
        """
        text = canonical_json(game_def)
        path = os.path.join(self.games_dir, f"{digest(game_def)}.json")
        if not os.path.exists(path):
            _write_atomic(path, text)
        return path

    # -- ids and tickets -----------------------------------------------------

    def new_job_id(self) -> str:
        """Unique without OS entropy: wall-clock ns + pid + local counter.

        Determinism policy (the ``unseeded-random`` lint rule) bans
        ``uuid4``/``os.urandom`` repo-wide; this triple is unique across
        processes (pid), across submissions in one process (counter),
        and across reboots (timestamp).
        """
        self._seq += 1
        return f"j{time.time_ns():016x}-{os.getpid():x}-{self._seq:x}"

    @staticmethod
    def _ticket_name(priority: int, seq: int, job_id: str) -> str:
        return f"p{MAX_PRIORITY - priority:02d}-{seq:020d}-{job_id}"

    @staticmethod
    def ticket_job_id(ticket: str) -> str:
        parts = ticket.split("-", 2)
        if len(parts) != 3:
            raise ServiceError(f"malformed queue ticket name {ticket!r}")
        return parts[2]

    @staticmethod
    def ticket_due_ns(ticket: str) -> int:
        """The nanosecond timestamp before which a ticket is not claimable."""
        parts = ticket.split("-", 2)
        if len(parts) != 3 or not parts[1].isdigit():
            raise ServiceError(f"malformed queue ticket name {ticket!r}")
        return int(parts[1])

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobStatus:
        """Register a job and enqueue its ticket; returns the queued status."""
        spec.validate()
        job_id = self.new_job_id()
        job_dir = self.job_dir(job_id)
        os.makedirs(job_dir, exist_ok=False)
        _write_atomic(self.spec_path(job_id), spec.to_json(indent=2))
        status = JobStatus(
            id=job_id,
            state="queued",
            kind=spec.kind,
            title=spec.title,
            priority=spec.priority,
            submitted_at=time.time(),
            max_attempts=spec.max_attempts,
        )
        self.write_status(status)
        # The ticket lands last: a server never claims a job whose spec
        # and status files are not fully in place yet.
        ticket = self._ticket_name(spec.priority, time.time_ns(), job_id)
        _write_atomic(os.path.join(self.queue_dir, ticket), job_id + "\n")
        return status

    # -- job state -----------------------------------------------------------

    def read_spec(self, job_id: str) -> JobSpec:
        try:
            with open(self.spec_path(job_id), encoding="utf-8") as fh:
                return JobSpec.from_json(fh.read())
        except FileNotFoundError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    def read_status(self, job_id: str) -> JobStatus:
        try:
            with open(self.status_path(job_id), encoding="utf-8") as fh:
                return JobStatus.from_json(fh.read())
        except FileNotFoundError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    def write_status(self, status: JobStatus) -> None:
        _write_atomic(self.status_path(status.id), status.to_json(indent=2))

    def append_log(self, job_id: str, message: str) -> None:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(time.time()))
        with open(self.log_path(job_id), "a", encoding="utf-8") as fh:
            fh.write(f"[{stamp}] {message}\n")

    def read_log(self, job_id: str) -> str:
        try:
            with open(self.log_path(job_id), encoding="utf-8") as fh:
                return fh.read()
        except FileNotFoundError:
            if not os.path.isdir(self.job_dir(job_id)):
                raise ServiceError(f"unknown job id {job_id!r}") from None
            return ""

    def read_result_text(self, job_id: str) -> str:
        try:
            with open(self.result_path(job_id), encoding="utf-8") as fh:
                return fh.read()
        except FileNotFoundError:
            status = self.read_status(job_id)  # raises for unknown ids
            raise ServiceError(
                f"job {job_id} has no result (state: {status.state})"
            ) from None

    def write_result_text(self, job_id: str, text: str) -> None:
        _write_atomic(self.result_path(job_id), text)

    def job_ids(self) -> list[str]:
        try:
            entries = sorted(os.listdir(self.jobs_dir))
        except FileNotFoundError:
            return []
        return [e for e in entries if os.path.isdir(self.job_dir(e))]

    # -- queue ---------------------------------------------------------------

    def queued_tickets(self) -> list[str]:
        """Tickets in scheduling order (priority desc, then FIFO)."""
        try:
            names = os.listdir(self.queue_dir)
        except FileNotFoundError:
            return []
        return sorted(n for n in names if ".tmp." not in n)

    def ticket_for(self, job_id: str) -> Optional[str]:
        for ticket in self.queued_tickets():
            if self.ticket_job_id(ticket) == job_id:
                return ticket
        return None

    def claim_next(self) -> Optional[str]:
        """Atomically claim the best queued job; None when the queue is idle.

        The claim is a rename of the ticket into the job directory —
        exactly one claimant can win it, and a client cancelling the same
        queued job (by removing the ticket) loses or wins the same race
        cleanly. Retry tickets carry a future due-timestamp and are
        skipped until it passes — backoff holds one job back, not the
        queue.
        """
        now_ns = time.time_ns()
        for ticket in self.queued_tickets():
            if self.ticket_due_ns(ticket) > now_ns:
                continue
            job_id = self.ticket_job_id(ticket)
            try:
                os.rename(
                    os.path.join(self.queue_dir, ticket),
                    os.path.join(self.job_dir(job_id), "ticket"),
                )
            except FileNotFoundError:
                continue  # claimed or cancelled by someone else: next
            except OSError:
                continue  # job dir vanished under us: not ours to run
            return job_id
        return None

    def remove_ticket(self, job_id: str) -> bool:
        """Dequeue a still-queued job; False if it was already claimed."""
        ticket = self.ticket_for(job_id)
        if ticket is None:
            return False
        try:
            os.remove(os.path.join(self.queue_dir, ticket))
        except FileNotFoundError:
            return False
        return True

    # -- crash recovery ------------------------------------------------------

    def claimed_ticket_path(self, job_id: str) -> str:
        """Where a claimed job's ticket lives (the orphan marker)."""
        return os.path.join(self.job_dir(job_id), "ticket")

    def is_claimed(self, job_id: str) -> bool:
        return os.path.exists(self.claimed_ticket_path(job_id))

    def claimed_job_ids(self) -> list[str]:
        """Jobs holding a claimed ticket — running, finished, or orphaned.

        The claim rename leaves the ticket in the job directory for the
        job's whole afterlife, so callers must cross-check the status
        (non-terminal state + stale heartbeat) before treating an entry
        here as an orphan.
        """
        return [job_id for job_id in self.job_ids() if self.is_claimed(job_id)]

    def requeue(self, job_id: str, delay_s: float = 0.0) -> bool:
        """Put a claimed job back on the queue; False if none was claimed.

        The inverse of :meth:`claim_next`: the claimed ticket renames back
        into ``queue/`` under a fresh sequence number — ``now + delay_s``,
        so a backoff retry sleeps in the queue without holding anything
        else up. Priority is preserved from the job's status.
        """
        status = self.read_status(job_id)
        ticket = self._ticket_name(
            status.priority,
            time.time_ns() + int(delay_s * 1e9),
            job_id,
        )
        try:
            os.rename(
                self.claimed_ticket_path(job_id),
                os.path.join(self.queue_dir, ticket),
            )
        except FileNotFoundError:
            return False
        return True

    # -- cancellation --------------------------------------------------------

    def request_cancel(self, job_id: str) -> None:
        _write_atomic(self.cancel_path(job_id), "cancel\n")

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(self.cancel_path(job_id))
