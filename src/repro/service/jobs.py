"""Job specifications and lifecycle status for the experiment service.

A :class:`JobSpec` is what a client submits: *what* to run (a registry
name or an inline spec dict for a scenario, audit, or frontier, plus an
optional inline :class:`~repro.games.dsl.GameDef` dict) and how urgently
(``priority``). A :class:`JobStatus` is what everyone reads back: the
lifecycle state, live progress, and — once finished — the stats that
prove how much of the work the result store answered.

Both round-trip losslessly through JSON; the spool keeps them as files,
so the JSON form *is* the wire format between client and server.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ServiceError

JOB_KINDS = ("scenario", "audit", "frontier")

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

TERMINAL_STATES = ("done", "failed", "cancelled")

MAX_PRIORITY = 99


def _opt_tuple(value):
    return tuple(value) if value is not None else None


@dataclass(frozen=True)
class JobSpec:
    """One unit of submitted work.

    Exactly one of ``name`` (a registry entry) and ``spec`` (an inline
    ScenarioSpec/AuditSpec dict) identifies the work. ``game_def`` is an
    inline GameDef dict: the server materializes it to a file inside the
    job directory and stamps the resulting ``file:`` name into the spec's
    ``game`` — so a client can submit a game nobody registered.
    ``ks``/``ts`` narrow a frontier's rectangle and are only legal for
    ``kind="frontier"``.
    """

    kind: str
    name: Optional[str] = None
    spec: Optional[dict] = None
    game_def: Optional[dict] = None
    ks: Optional[tuple] = None
    ts: Optional[tuple] = None
    priority: int = 10
    description: str = ""
    max_attempts: int = 3
    """How many executions this job may consume before the server marks
    it failed for good — counting crashed attempts (the orphan scan
    requeues a job whose server died mid-run) as well as retried errors.
    ``1`` means fail fast."""

    def validate(self) -> "JobSpec":
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}; expected one of "
                f"{', '.join(JOB_KINDS)}"
            )
        if (self.name is None) == (self.spec is None):
            raise ServiceError(
                "a JobSpec needs exactly one of name= (a registry entry) "
                "or spec= (an inline spec dict)"
            )
        if self.kind != "frontier" and (self.ks is not None or self.ts is not None):
            raise ServiceError("ks/ts only apply to frontier jobs")
        if not isinstance(self.priority, int) or not (
            0 <= self.priority <= MAX_PRIORITY
        ):
            raise ServiceError(
                f"priority must be an int in 0..{MAX_PRIORITY}, "
                f"got {self.priority!r}"
            )
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        return self

    @property
    def title(self) -> str:
        """What listings show: the registry name or the inline spec's."""
        if self.name is not None:
            return self.name
        inline = (self.spec or {}).get("name")
        return str(inline) if inline else f"<inline {self.kind}>"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "spec": self.spec,
            "game_def": self.game_def,
            "ks": self.ks,
            "ts": self.ts,
            "priority": self.priority,
            "description": self.description,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ServiceError(
                f"unknown JobSpec fields: {', '.join(sorted(unknown))}"
            )
        if "kind" not in data:
            raise ServiceError("a JobSpec needs a 'kind'")
        coerced = dict(data)
        for key in ("ks", "ts"):
            if coerced.get(key) is not None:
                coerced[key] = _opt_tuple(coerced[key])
        return cls(**coerced).validate()

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed JobSpec JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ServiceError("a JobSpec must be a JSON object")
        return cls.from_dict(data)


@dataclass(frozen=True)
class JobStatus:
    """The whole lifecycle of one job, as the spool's ``status.json``.

    ``stats`` carries the dedup proof once the job finishes:
    ``result_hit`` (the entire result document came from the store) and
    the runner's ``store`` hit/miss split for partially-cached grids.

    ``heartbeat_at``/``phase`` are the liveness stream: the server
    re-stamps ``heartbeat_at`` on every status write (including periodic
    writes with no progress) and keeps ``phase`` at the current lifecycle
    step — so a reader can tell a *stuck* job (stale heartbeat) from a
    *slow* one (fresh heartbeat, ``done`` unchanged). Both default to
    empty, so status documents written by older servers still parse.

    ``attempts``/``max_attempts`` are the crash-safety ledger: the server
    bumps ``attempts`` each time it starts executing the job, and a job
    that dies with its server (stale heartbeat, ticket claimed) or fails
    with an error is requeued until the budget is spent. The defaults —
    0 of 1 — make status documents from pre-retry servers parse as
    single-attempt jobs.
    """

    id: str
    state: str
    kind: str
    title: str
    priority: int
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: int = 0
    total: int = 0
    error: Optional[str] = None
    stats: dict = field(default_factory=dict)
    heartbeat_at: Optional[float] = None
    phase: str = ""
    attempts: int = 0
    max_attempts: int = 1

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def replace(self, **changes) -> "JobStatus":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "kind": self.kind,
            "title": self.title,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "done": self.done,
            "total": self.total,
            "error": self.error,
            "stats": self.stats,
            "heartbeat_at": self.heartbeat_at,
            "phase": self.phase,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobStatus":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ServiceError(
                f"unknown JobStatus fields: {', '.join(sorted(unknown))}"
            )
        if data.get("state") not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {data.get('state')!r}; expected one of "
                f"{', '.join(JOB_STATES)}"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobStatus":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed JobStatus JSON: {exc}") from exc
        return cls.from_dict(data)
