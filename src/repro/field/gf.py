"""Prime-field GF(p) arithmetic.

A :class:`GF` object represents the field; :class:`GFElement` is an immutable
element supporting the usual operators. Elements of different fields never
mix (attempting to raises :class:`~repro.errors.FieldError`).

Two standard primes are provided:

* ``DEFAULT_PRIME`` — a 61-bit Mersenne prime, large enough that the
  SPDZ-style MAC forgery probability (2/p) is negligible for the
  epsilon-variant engines.
* ``SMALL_PRIME`` — a small prime handy for tests that want to enumerate.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import FieldError

DEFAULT_PRIME = 2**61 - 1
SMALL_PRIME = 101

IntoElement = Union["GFElement", int]


class GF:
    """The finite field of integers modulo a prime ``p``."""

    _cache: dict[int, "GF"] = {}

    def __new__(cls, p: int) -> "GF":
        cached = cls._cache.get(p)
        if cached is not None:
            return cached
        if p < 2:
            raise FieldError(f"field modulus must be >= 2, got {p}")
        obj = super().__new__(cls)
        obj._init(p)
        cls._cache[p] = obj
        return obj

    def _init(self, p: int) -> None:
        self.p = p
        self._zero = GFElement(self, 0)
        self._one = GFElement(self, 1)

    # -- constructors ------------------------------------------------------

    def __call__(self, value: IntoElement) -> "GFElement":
        """Coerce ``value`` into this field."""
        if isinstance(value, GFElement):
            if value.field is not self:
                raise FieldError("cannot coerce element across fields")
            return value
        return GFElement(self, value % self.p)

    def zero(self) -> "GFElement":
        return self._zero

    def one(self) -> "GFElement":
        return self._one

    def random(self, rng) -> "GFElement":
        """A uniformly random element drawn from ``rng``."""
        return GFElement(self, rng.randrange(self.p))

    def random_nonzero(self, rng) -> "GFElement":
        return GFElement(self, rng.randrange(1, self.p))

    def elements(self) -> Iterable["GFElement"]:
        """Iterate over all field elements (only sensible for small p)."""
        return (GFElement(self, v) for v in range(self.p))

    def batch(self, values: Sequence[int]) -> list["GFElement"]:
        return [GFElement(self, v % self.p) for v in values]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("GF", self.p))

    def __repr__(self) -> str:
        return f"GF({self.p})"

    # -- copying / pickling -------------------------------------------------
    # Fields are interned singletons and coercion checks ``field is self``,
    # so every copy path must hand back the canonical instance for ``p``
    # (deepcopying a process snapshot for crash-restart, pickling payloads
    # for the TCP transport).

    def __copy__(self) -> "GF":
        return self

    def __deepcopy__(self, memo) -> "GF":
        return self

    def __reduce__(self):
        return (GF, (self.p,))


class GFElement:
    """An immutable element of a :class:`GF` field."""

    __slots__ = ("field", "value")

    def __init__(self, field: GF, value: int) -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value % field.p)

    def __setattr__(self, name: str, value: object) -> None:
        raise FieldError("GFElement is immutable")

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other: IntoElement) -> "GFElement":
        if isinstance(other, GFElement):
            if other.field is not self.field:
                raise FieldError(
                    f"mixed-field operation: {self.field} vs {other.field}"
                )
            return other
        if isinstance(other, int):
            return GFElement(self.field, other)
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GFElement(self.field, self.value + other.value)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GFElement(self.field, self.value - other.value)

    def __rsub__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GFElement(self.field, other.value - self.value)

    def __mul__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GFElement(self.field, self.value * other.value)

    __rmul__ = __mul__

    def __neg__(self) -> "GFElement":
        return GFElement(self.field, -self.value)

    def inverse(self) -> "GFElement":
        """Multiplicative inverse (Fermat); raises on zero."""
        if self.value == 0:
            raise FieldError("zero has no multiplicative inverse")
        return GFElement(self.field, pow(self.value, self.field.p - 2, self.field.p))

    def __truediv__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other: IntoElement) -> "GFElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "GFElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return GFElement(self.field, pow(self.value, exponent, self.field.p))

    # -- comparison / hashing ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GFElement):
            return self.field is other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value}@GF({self.field.p})"

    # -- copying / pickling -------------------------------------------------
    # Immutable value: copies return self; pickling rebuilds through the
    # constructor so ``field`` re-interns instead of tripping the
    # slots-and-immutability guard in ``__setattr__``.

    def __copy__(self) -> "GFElement":
        return self

    def __deepcopy__(self, memo) -> "GFElement":
        return self

    def __reduce__(self):
        return (GFElement, (self.field, self.value))
