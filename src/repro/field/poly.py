"""Polynomials over GF(p): interpolation and Reed-Solomon decoding.

The MPC substrate relies on three operations here:

* :func:`lagrange_interpolate` — exact interpolation through clean points
  (used by honest dealers and by reconstruction when no faults occurred).
* :func:`berlekamp_welch` — decode a degree-``d`` polynomial from points of
  which up to ``e`` may be corrupted (``len(points) >= d + 1 + 2e``). This is
  what makes openings *robust*: a Byzantine party sending a wrong share is
  simply corrected away.
* :func:`robust_interpolate` — the online-error-correction wrapper used by
  asynchronous openings: given the points received so far, either return the
  unique degree-``d`` polynomial consistent with all-but-``e`` of them or
  report that more points are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import DecodingError, FieldError
from repro.field.gf import GF, GFElement


@dataclass(frozen=True)
class Polynomial:
    """A polynomial over GF(p), stored as a coefficient tuple (low first)."""

    field: GF
    coeffs: tuple[GFElement, ...]

    @staticmethod
    def from_ints(field: GF, coeffs: Sequence[int]) -> "Polynomial":
        return Polynomial(field, tuple(field(c) for c in coeffs)).normalized()

    @staticmethod
    def zero(field: GF) -> "Polynomial":
        return Polynomial(field, ())

    @staticmethod
    def random(field: GF, degree: int, rng, constant: Optional[GFElement] = None) -> "Polynomial":
        """Random polynomial of exactly the given degree bound.

        If ``constant`` is supplied it becomes the constant term (the secret,
        in Shamir terms); remaining coefficients are uniform.
        """
        coeffs = [field.random(rng) for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = field(constant)
        return Polynomial(field, tuple(coeffs)).normalized()

    # -- structural --------------------------------------------------------

    def normalized(self) -> "Polynomial":
        """Strip trailing zero coefficients."""
        coeffs = list(self.coeffs)
        while coeffs and coeffs[-1].value == 0:
            coeffs.pop()
        return Polynomial(self.field, tuple(coeffs))

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    # -- evaluation --------------------------------------------------------

    def __call__(self, x) -> GFElement:
        x = self.field(x)
        acc = self.field.zero()
        for coeff in reversed(self.coeffs):
            acc = acc * x + coeff
        return acc

    def evaluate_many(self, xs: Sequence) -> list[GFElement]:
        return [self(x) for x in xs]

    # -- arithmetic --------------------------------------------------------

    def _check(self, other: "Polynomial") -> None:
        if other.field is not self.field:
            raise FieldError("mixed-field polynomial operation")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        n = max(len(self.coeffs), len(other.coeffs))
        zero = self.field.zero()
        coeffs = tuple(
            (self.coeffs[i] if i < len(self.coeffs) else zero)
            + (other.coeffs[i] if i < len(other.coeffs) else zero)
            for i in range(n)
        )
        return Polynomial(self.field, coeffs).normalized()

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.field, tuple(-c for c in self.coeffs))

    def __mul__(self, other) -> "Polynomial":
        if isinstance(other, (GFElement, int)):
            scalar = self.field(other)
            return Polynomial(
                self.field, tuple(c * scalar for c in self.coeffs)
            ).normalized()
        self._check(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        zero = self.field.zero()
        out = [zero] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a.value == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = out[i + j] + a * b
        return Polynomial(self.field, tuple(out)).normalized()

    __rmul__ = __mul__

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Polynomial long division; returns (quotient, remainder)."""
        self._check(divisor)
        if divisor.is_zero():
            raise FieldError("polynomial division by zero")
        field = self.field
        remainder = list(self.coeffs)
        quotient = [field.zero()] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        inv_lead = divisor.coeffs[-1].inverse()
        for shift in range(len(remainder) - len(divisor.coeffs), -1, -1):
            factor = remainder[shift + len(divisor.coeffs) - 1] * inv_lead
            if factor.value == 0:
                continue
            quotient[shift] = factor
            for i, dcoeff in enumerate(divisor.coeffs):
                remainder[shift + i] = remainder[shift + i] - factor * dcoeff
        return (
            Polynomial(field, tuple(quotient)).normalized(),
            Polynomial(field, tuple(remainder)).normalized(),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (
            self.field is other.field
            and self.normalized().coeffs == other.normalized().coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.normalized().coeffs))

    def __repr__(self) -> str:
        return f"Polynomial({[c.value for c in self.coeffs]} over GF({self.field.p}))"


def lagrange_interpolate(field: GF, points: Sequence[tuple], ) -> Polynomial:
    """Interpolate the unique polynomial of degree < len(points).

    ``points`` is a sequence of (x, y) pairs with distinct x values.
    """
    xs = [field(x) for x, _ in points]
    ys = [field(y) for _, y in points]
    if len({x.value for x in xs}) != len(xs):
        raise FieldError("interpolation points must have distinct x values")
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        numerator = Polynomial(field, (field.one(),))
        denominator = field.one()
        for j, xj in enumerate(xs):
            if i == j:
                continue
            numerator = numerator * Polynomial(field, (-xj, field.one()))
            denominator = denominator * (xi - xj)
        result = result + numerator * (yi / denominator)
    return result.normalized()


def lagrange_coefficients_at_zero(field: GF, xs: Sequence) -> list[GFElement]:
    """Coefficients lambda_i with p(0) = sum_i lambda_i * p(x_i).

    These are the recombination weights used everywhere in Shamir-based MPC.
    """
    xs = [field(x) for x in xs]
    coeffs = []
    for i, xi in enumerate(xs):
        num = field.one()
        den = field.one()
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num = num * (-xj)
            den = den * (xi - xj)
        coeffs.append(num / den)
    return coeffs


def berlekamp_welch(
    field: GF,
    points: Sequence[tuple],
    degree: int,
    max_errors: int,
) -> Polynomial:
    """Decode a degree-``degree`` polynomial from noisy evaluations.

    Requires ``len(points) >= degree + 1 + 2 * max_errors``. Returns the
    unique polynomial agreeing with at least ``len(points) - max_errors`` of
    the given points, or raises :class:`DecodingError` if none exists.

    Implementation: classic Berlekamp-Welch. Find polynomials E (monic,
    deg <= e) and Q (deg <= degree + e) with Q(x_i) = y_i * E(x_i) for all i;
    then P = Q / E.
    """
    xs = [field(x) for x, _ in points]
    ys = [field(y) for _, y in points]
    n_points = len(points)
    if len({x.value for x in xs}) != n_points:
        raise FieldError("decoding points must have distinct x values")
    if degree < 0:
        raise FieldError("degree must be >= 0 for decoding")
    if n_points < degree + 1 + 2 * max_errors:
        raise DecodingError(
            f"need >= {degree + 1 + 2 * max_errors} points to correct "
            f"{max_errors} errors at degree {degree}, got {n_points}"
        )

    # Fast path: the points may already be consistent.
    exact = lagrange_interpolate(field, list(zip(xs[: degree + 1], ys[: degree + 1])))
    if exact.degree <= degree and all(exact(x) == y for x, y in zip(xs, ys)):
        return exact

    for e in range(1, max_errors + 1):
        poly = _berlekamp_welch_fixed_e(field, xs, ys, degree, e)
        if poly is not None:
            agreement = sum(1 for x, y in zip(xs, ys) if poly(x) == y)
            if agreement >= n_points - max_errors and poly.degree <= degree:
                return poly
    raise DecodingError(
        f"no degree-{degree} polynomial within {max_errors} errors of the points"
    )


def _berlekamp_welch_fixed_e(
    field: GF,
    xs: Sequence[GFElement],
    ys: Sequence[GFElement],
    degree: int,
    e: int,
) -> Optional[Polynomial]:
    """Solve the BW linear system for exactly ``e`` errors; None on failure."""
    n_points = len(xs)
    q_len = degree + e + 1  # unknown coefficients of Q
    # Unknowns: q_0..q_{degree+e}, e_0..e_{e-1}  (E is monic of degree e).
    n_unknowns = q_len + e
    rows = []
    rhs = []
    for x, y in zip(xs, ys):
        row = [field.zero()] * n_unknowns
        xp = field.one()
        for j in range(q_len):
            row[j] = xp
            xp = xp * x
        xp = field.one()
        for j in range(e):
            row[q_len + j] = -(y * xp)
            xp = xp * x
        # Monic term of E contributes y * x^e to the RHS.
        rows.append(row)
        rhs.append(y * (x**e))
    solution = _solve_linear_system(field, rows, rhs)
    if solution is None:
        return None
    q_poly = Polynomial(field, tuple(solution[:q_len])).normalized()
    e_coeffs = list(solution[q_len:]) + [field.one()]
    e_poly = Polynomial(field, tuple(e_coeffs)).normalized()
    quotient, remainder = q_poly.divmod(e_poly)
    if not remainder.is_zero():
        return None
    return quotient


def _solve_linear_system(
    field: GF, rows: list[list[GFElement]], rhs: list[GFElement]
) -> Optional[list[GFElement]]:
    """Gaussian elimination over GF(p); returns one solution or None.

    Underdetermined systems are resolved by setting free variables to zero.
    """
    n_rows = len(rows)
    if n_rows == 0:
        return []
    n_cols = len(rows[0])
    aug = [list(row) + [b] for row, b in zip(rows, rhs)]
    pivot_cols: list[int] = []
    row_idx = 0
    for col in range(n_cols):
        pivot = None
        for r in range(row_idx, n_rows):
            if aug[r][col].value != 0:
                pivot = r
                break
        if pivot is None:
            continue
        aug[row_idx], aug[pivot] = aug[pivot], aug[row_idx]
        inv = aug[row_idx][col].inverse()
        aug[row_idx] = [v * inv for v in aug[row_idx]]
        for r in range(n_rows):
            if r != row_idx and aug[r][col].value != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[row_idx])]
        pivot_cols.append(col)
        row_idx += 1
        if row_idx == n_rows:
            break
    # Check consistency of zero rows.
    for r in range(row_idx, n_rows):
        if aug[r][n_cols].value != 0:
            return None
    solution = [field.zero()] * n_cols
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n_cols]
    return solution


def robust_interpolate(
    field: GF,
    points: Sequence[tuple],
    degree: int,
    total_parties: int,
    max_faulty: int,
) -> Optional[Polynomial]:
    """Online-error-correction step for asynchronous robust openings.

    Given the points received *so far* (of which up to ``max_faulty`` may be
    corrupted — but we do not know which), return the unique degree-``degree``
    polynomial that is guaranteed correct, or ``None`` if more points must be
    awaited.

    The guarantee: a returned polynomial agrees with at least
    ``degree + max_faulty + 1`` of the received points, hence with at least
    ``degree + 1`` honest points, hence equals the honest polynomial.
    """
    received = len(points)
    # Try every error budget e supportable by the current point count.
    best_e = min(max_faulty, (received - degree - 1) // 2) if received > degree else -1
    for e in range(0, best_e + 1):
        try:
            poly = berlekamp_welch(field, points, degree, e)
        except DecodingError:
            continue
        agreement = sum(1 for x, y in points if poly(field(x)) == field(y))
        if agreement >= degree + max_faulty + 1:
            return poly
    return None
