"""Finite-field algebra: GF(p) elements, polynomials, Reed-Solomon decoding.

This is the algebraic substrate for Shamir secret sharing, AVSS, and the
robust (error-corrected) openings used by the asynchronous MPC engines.
"""

from repro.field.gf import GF, GFElement, DEFAULT_PRIME, SMALL_PRIME
from repro.field.poly import (
    Polynomial,
    lagrange_interpolate,
    lagrange_coefficients_at_zero,
    berlekamp_welch,
    robust_interpolate,
)

__all__ = [
    "GF",
    "GFElement",
    "DEFAULT_PRIME",
    "SMALL_PRIME",
    "Polynomial",
    "lagrange_interpolate",
    "lagrange_coefficients_at_zero",
    "berlekamp_welch",
    "robust_interpolate",
]
