"""Deterministic fault injection for both substrates.

The paper's theorems are *resilience* claims: the cheap-talk mediator
survives up to ``t`` crashed players among ``n >= 2k+3``. This package
turns those claims into executable experiments — a declarative, seeded
:class:`FaultPlan` (named like latency models: ``crash@p2s40``,
``drop-0.1``, ``partition@{1,2}t30h90``, ...) is injected through the
simulated kernel and the asyncio substrate via one shared
:class:`FaultInjector` state machine, and the masking oracle in
:mod:`repro.faults.masking` checks mechanically that plans within the
fault budget leave honest players' records untouched.
"""

from repro.errors import FaultError
from repro.faults.injector import FaultEvent, FaultInjector, injector_for
from repro.faults.plan import (
    CorruptTcpFault,
    CrashFault,
    DropFault,
    DupFault,
    FaultPlan,
    PartitionFault,
    fault_from_name,
    fault_names,
    register_fault,
)

__all__ = [
    "CorruptTcpFault",
    "CrashFault",
    "DropFault",
    "DupFault",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PartitionFault",
    "fault_from_name",
    "fault_names",
    "injector_for",
    "register_fault",
]
