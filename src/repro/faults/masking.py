"""The masking oracle: injected failures the protocol must absorb.

The paper's resilience claims are *masking* claims. Theorem 4.1's
cheap-talk protocol tolerates up to ``k + t`` arbitrary deviators, so a
fortiori it tolerates that many *crashes*: the surviving honest players
must produce exactly the actions and payoffs they produce in a fault-free
run. The Section 6.4 mediator game tolerates up to ``k`` players
outputting ⊥ (its payoff table is flat in up-to-``k`` ⊥s) — but crashing
the *mediator* silences everyone, the single point of failure cheap talk
exists to remove.

This module turns those claims into an executable check. For a scenario
whose ``faults`` axis lists fault plans alongside ``"none"``, the oracle
runs the grid once and compares, cell by cell, the **honest** players'
records under each plan against the fault-free leg:

* a plan **masks** when every honest player's action and payoff is
  byte-identical to the baseline (crashed players are excluded — their
  own records are *supposed* to change);
* a plan **breaks** when any honest cell differs.

Plans on the scenario's axis are expected to mask. :data:`BREAKING_PLANS`
holds the curated over-budget plans — ``k + t + 1`` crashes for Thm 4.1,
the mediator crash and the ``k + 1``-th ⊥ for Sec 6.4 — that are expected
to break; a "resilience" claim whose budget cannot be exceeded is not
tight, it is vacuous. ``repro faults check`` runs both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, fault_from_name

#: Scenario names `repro faults check` runs by default, mapped to the
#: over-budget plans that must break them (tightness direction).
BREAKING_PLANS: dict[str, tuple[str, ...]] = {
    # k + t = 2 crashes mask (they are on the scenario's axis);
    # a third crash exceeds the Thm 4.1 budget and flips the whole
    # consensus to the default move.
    "faultcheck-thm41": ("crash@p0s5+crash@p1s5+crash@p8s9",),
    # The mediator (pid n = 7) is the single point of failure: crashing
    # it silences every player. And the Sec 6.4 payoff table only
    # absorbs up to k = 2 ⊥s — a third crashed player drags every
    # honest payoff from 2.0 to 1.1. Even benign 5% message loss breaks
    # the mediator game (it has no retransmission layer), while the
    # same plan masks on the cheap-talk grid.
    "faultcheck-sec64": (
        "crash@p7s0",
        "crash@p0s5+crash@p1s5+crash@p2s5",
        "drop-0.05",
    ),
}


def crash_budget(spec) -> int:
    """How many permanent player crashes the spec's claim absorbs.

    Cheap-talk theorems tolerate ``k + t`` arbitrary deviators (Thms
    4.1–4.5), so that many crashes must mask. The mediator game's
    Sec 6.4 payoff design is flat in up to ``k`` ⊥-outputs, so ``k``
    player crashes must mask — provided the mediator itself survives.
    """
    if spec.theorem in ("4.1", "4.2", "4.4", "4.5"):
        return spec.k + spec.t
    if spec.theorem == "mediator":
        return spec.k
    return 0


def crashed_players(plan: Union[str, FaultPlan], n: int) -> tuple[int, ...]:
    """Player pids (< n) a plan permanently crashes.

    Crash-restart targets recover and are held to the honest standard;
    a crashed *mediator* (pid >= n) is not a player and never appears in
    action/payoff tuples, so it is excluded here too (its failure shows
    up as honest-player breakage instead).
    """
    if isinstance(plan, str):
        plan = fault_from_name(plan)
    return tuple(
        pid for pid, crash in sorted(plan.crashes.items())
        if crash.restart is None and pid < n
    )


@dataclass(frozen=True)
class CellMismatch:
    """One honest-player divergence between a faulty and fault-free cell."""

    scheduler: str
    seed: int
    timing: str
    field: str
    """``"actions"``, ``"payoffs"``, or ``"outcome"`` (ok-flag flip)."""
    pid: Optional[int]
    baseline: object
    observed: object

    def describe(self) -> str:
        where = f"{self.scheduler}/seed{self.seed}"
        if self.pid is not None:
            where += f"/p{self.pid}"
        return (
            f"{where}: {self.field} {self.baseline!r} -> {self.observed!r}"
        )


@dataclass(frozen=True)
class PlanReport:
    """The oracle's verdict on one fault plan over one scenario grid."""

    scenario: str
    plan: str
    expect: str
    """``"mask"`` (within budget) or ``"break"`` (over budget)."""
    crashed: tuple[int, ...]
    budget: int
    cells: int
    mismatches: tuple[CellMismatch, ...]

    @property
    def masked(self) -> bool:
        return not self.mismatches

    @property
    def ok(self) -> bool:
        return self.masked if self.expect == "mask" else not self.masked

    def describe(self) -> str:
        verdict = "masked" if self.masked else "broke"
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.scenario}: {self.plan} {verdict} "
            f"(expected {self.expect}, {len(self.crashed)} crash(es), "
            f"budget {self.budget}, {self.cells} cell(s))"
        )


@dataclass(frozen=True)
class MaskingResult:
    """All plan verdicts for one scenario."""

    scenario: str
    reports: tuple[PlanReport, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)


def _cell_key(record) -> tuple:
    return (
        record.game, record.timing, record.scheduler, record.deviation,
        record.runtime, record.latency, record.seed,
    )


def _compare_cell(baseline, faulty, honest) -> list[CellMismatch]:
    """Honest-player mismatches of one faulty cell vs. its baseline."""

    def mismatch(field, pid, base_value, seen_value):
        return CellMismatch(
            scheduler=baseline.scheduler, seed=baseline.seed,
            timing=baseline.timing, field=field, pid=pid,
            baseline=base_value, observed=seen_value,
        )

    if faulty.ok != baseline.ok:
        return [mismatch(
            "outcome", None,
            baseline.error or "ok", faulty.error or faulty.timed_out,
        )]
    out = []
    for field in ("actions", "payoffs"):
        base_values = getattr(baseline, field)
        seen_values = getattr(faulty, field)
        for pid in honest:
            if pid >= len(base_values) or pid >= len(seen_values):
                out.append(mismatch(field, pid, "present", "missing"))
                continue
            if base_values[pid] != seen_values[pid]:
                out.append(
                    mismatch(field, pid, base_values[pid], seen_values[pid])
                )
    return out


def check_plans(spec, baseline_records, plan_records, plan: str,
                expect: str) -> PlanReport:
    """Judge one plan's records against the fault-free baseline records."""
    crashed = crashed_players(plan, spec.n)
    honest = [pid for pid in range(spec.n) if pid not in crashed]
    base_by_cell = {_cell_key(r): r for r in baseline_records}
    mismatches = []
    cells = 0
    for record in plan_records:
        key = _cell_key(record)
        base = base_by_cell.get(key)
        if base is None:
            raise FaultError(
                f"fault plan {plan!r} produced cell {key} with no "
                f"fault-free twin — grids out of sync"
            )
        cells += 1
        mismatches.extend(_compare_cell(base, record, honest))
    if cells != len(base_by_cell):
        raise FaultError(
            f"fault plan {plan!r} covered {cells} cells but the baseline "
            f"has {len(base_by_cell)} — grids out of sync"
        )
    return PlanReport(
        scenario=spec.name, plan=plan, expect=expect,
        crashed=crashed, budget=crash_budget(spec), cells=cells,
        mismatches=tuple(mismatches),
    )


def check_scenario(scenario, breaking: Optional[tuple] = None,
                   runner=None) -> MaskingResult:
    """Run the masking oracle over one scenario.

    ``scenario`` is a name or a :class:`ScenarioSpec` whose ``faults``
    axis lists the plans expected to *mask* (plus ``"none"``). The whole
    grid runs once; each plan's cells are compared to the fault-free leg.
    ``breaking`` plans (default: :data:`BREAKING_PLANS` for the scenario
    name) then each run as a one-plan grid and must *fail* to mask.
    """
    from repro.experiments.registry import get_scenario
    from repro.experiments.runner import ExperimentRunner

    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if breaking is None:
        breaking = BREAKING_PLANS.get(spec.name, ())
    if "none" not in spec.faults:
        spec = spec.replace(faults=("none",) + spec.faults)
    if runner is None:
        runner = ExperimentRunner()

    result = runner.run(spec)
    by_plan: dict[str, list] = {}
    for record in result.records:
        by_plan.setdefault(record.faults, []).append(record)
    baseline = by_plan.get("none", [])
    if not baseline:
        raise FaultError(
            f"scenario {spec.name!r} produced no fault-free baseline leg"
        )
    reports = [
        check_plans(spec, baseline, by_plan[plan], plan, expect="mask")
        for plan in spec.faults if plan != "none"
    ]
    for plan in breaking:
        broken = runner.run(spec.replace(faults=(plan,)))
        reports.append(
            check_plans(spec, baseline, list(broken.records), plan,
                        expect="break")
        )
    return MaskingResult(scenario=spec.name, reports=tuple(reports))


def run_faultcheck(names=None, runner=None) -> list[MaskingResult]:
    """Run the oracle over the faultcheck scenarios (CLI entry point)."""
    if names is None:
        names = sorted(BREAKING_PLANS)
    return [check_scenario(name, runner=runner) for name in names]
