"""The declarative, seeded FaultPlan DSL.

A *fault plan* names what the real world is allowed to do to a run:
crash a process at a step, drop or duplicate messages with a seeded
probability, partition a set of processes from the rest for a window of
steps, kill and later restart a process (replaying its inbox from the
message log), or corrupt frames on the TCP wire. Plans are named the way
timing and latency models are — short, round-trippable strings that ride
through ScenarioSpec/RunRecord JSON, CSV rows, and store fingerprints as
the ``faults`` axis:

* ``none`` — the identity plan (the default everywhere);
* ``crash@p2s40`` — crash pid 2 at delivery step 40;
* ``crash-restart@p3s20r60`` — crash pid 3 at step 20, restart it at
  step 60 with its logged inbox replayed (outbound sends suppressed
  during replay: they already happened);
* ``drop-0.1`` — drop each protocol message with probability 0.1;
* ``dup-0.05`` — duplicate each protocol message with probability 0.05;
* ``partition@{1,2}t30h90`` — from step 30 until step 90, messages
  crossing the cut between {1, 2} and everyone else are held and
  released at heal;
* ``corrupt-tcp-0.01`` — flip a byte in 1% of TCP frames (the receiver's
  CRC check discards them; a no-op on the sim and in-memory substrates);
* compound plans join actions with ``+``: ``drop-0.1+crash@p2s40``.

Every probabilistic decision draws from a per-edge ``RngTree`` stream
rooted at the *run seed* and namespaced by the action kind — so the same
``(seed, plan)`` produces the same fault schedule on repeat runs, and
composing actions never perturbs each other's streams. Step thresholds
(crash/restart/partition windows) count *deliveries*, the substrate-
neutral clock both runtimes share; an event whose step never arrives
simply does not fire.

Like latency models, plans are registered by name: exact names in
``FAULT_BUILDERS``, parameterized forms via regexes in
:func:`fault_from_name`. Third-party actions register with
:func:`register_fault`.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from repro.errors import FaultError
from repro.utils.rng import RngTree


def _fmt(value: float) -> str:
    """Round-trippable numeric formatting for model names."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _probability(raw: str, form: str) -> float:
    p = float(raw)
    if not 0.0 <= p <= 1.0:
        raise FaultError(f"{form} probability must be in [0, 1], got {p}")
    return p


class FaultAction:
    """One named fault; a plan is a ``+``-joined sequence of these.

    Subclasses set ``kind`` and ``name`` and draw any randomness from
    per-edge streams handed out by :meth:`edge_rng`, which memoizes
    ``tree.child("fault", kind, "edge", sender, recipient)`` — one
    independent stream per (action kind, directed edge), consumed in
    send order.
    """

    kind = "none"

    def __init__(self) -> None:
        self.name = self.kind
        self._tree: Optional[RngTree] = None
        self._edge_rngs: dict = {}

    def reset(self, tree: RngTree) -> None:
        """Re-root this action's streams for a new run."""
        self._tree = tree
        self._edge_rngs = {}

    def edge_rng(self, sender: int, recipient: int):
        key = (sender, recipient)
        rng = self._edge_rngs.get(key)
        if rng is None:
            if self._tree is None:
                raise FaultError(
                    f"fault action {self.name!r} used before reset()"
                )
            rng = self._tree.child("fault", self.kind, "edge",
                                   sender, recipient).rng
            self._edge_rngs[key] = rng
        return rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class CrashFault(FaultAction):
    """Kill ``pid`` at delivery step ``step``; optionally restart later.

    Without ``restart`` the crash is permanent — the process halts, its
    pending inbound messages are discarded, and :func:`resolve_actions`
    hands it the game's default move, exactly like the fail-stop
    deviations. With ``restart`` the process is replaced by a pristine
    copy at step ``restart`` and its logged inbox (start signal included)
    is replayed with outbound sends suppressed — the crash-recovery model
    with a stable message log.
    """

    kind = "crash"

    def __init__(self, pid: int, step: int,
                 restart: Optional[int] = None) -> None:
        super().__init__()
        if pid < 0:
            raise FaultError(f"crash pid must be >= 0, got {pid}")
        if step < 0:
            raise FaultError(f"crash step must be >= 0, got {step}")
        if restart is not None and restart <= step:
            raise FaultError(
                f"restart step {restart} must come after crash step {step}"
            )
        self.pid = pid
        self.step = step
        self.restart = restart
        if restart is None:
            self.name = f"crash@p{pid}s{step}"
        else:
            self.kind = "crash-restart"
            self.name = f"crash-restart@p{pid}s{step}r{restart}"


class DropFault(FaultAction):
    """Drop each protocol message with probability ``p`` (per-edge seeded)."""

    kind = "drop"

    def __init__(self, p: float) -> None:
        super().__init__()
        self.p = float(p)
        self.name = f"drop-{_fmt(self.p)}"

    def decide(self, sender: int, recipient: int) -> bool:
        return self.edge_rng(sender, recipient).random() < self.p


class DupFault(FaultAction):
    """Duplicate each protocol message with probability ``p``."""

    kind = "dup"

    def __init__(self, p: float) -> None:
        super().__init__()
        self.p = float(p)
        self.name = f"dup-{_fmt(self.p)}"

    def decide(self, sender: int, recipient: int) -> bool:
        return self.edge_rng(sender, recipient).random() < self.p


class PartitionFault(FaultAction):
    """Hold messages crossing the cut between ``group`` and the rest.

    Active while ``start <= step < heal``; held messages are reinstated
    at the heal step (or immediately when traffic drains first — the
    fault schedule cannot outlive the run, so a partitioned run always
    quiesces).
    """

    kind = "partition"

    def __init__(self, group, start: int, heal: int) -> None:
        super().__init__()
        pids = tuple(sorted(set(int(p) for p in group)))
        if not pids:
            raise FaultError("partition group must name at least one pid")
        if any(p < 0 for p in pids):
            raise FaultError(f"partition pids must be >= 0, got {pids}")
        if start < 0 or heal <= start:
            raise FaultError(
                f"partition window must satisfy 0 <= start < heal, "
                f"got start={start} heal={heal}"
            )
        self.group = frozenset(pids)
        self.start = start
        self.heal = heal
        self.name = (
            f"partition@{{{','.join(str(p) for p in pids)}}}"
            f"t{start}h{heal}"
        )

    def crosses(self, sender: int, recipient: int) -> bool:
        return (sender in self.group) != (recipient in self.group)


class CorruptTcpFault(FaultAction):
    """Flip a byte in a fraction ``p`` of TCP frames (CRC discards them).

    Only the TCP transport has a wire to corrupt; on the sim kernel and
    the in-memory transport this action is the identity.
    """

    kind = "corrupt-tcp"

    def __init__(self, p: float) -> None:
        super().__init__()
        self.p = float(p)
        self.name = f"corrupt-tcp-{_fmt(self.p)}"

    def decide(self, sender: int, recipient: int) -> bool:
        return self.edge_rng(sender, recipient).random() < self.p


class FaultPlan:
    """An ordered bundle of :class:`FaultAction`\\ s with one canonical name.

    The empty plan is ``none``. Plans are immutable after construction;
    :meth:`reset` re-roots every action's seeded streams for a new run.
    """

    def __init__(self, actions=()) -> None:
        self.actions = tuple(actions)
        crashed = {}
        for action in self.actions:
            if isinstance(action, CrashFault):
                if action.pid in crashed:
                    raise FaultError(
                        f"plan crashes pid {action.pid} twice "
                        f"({crashed[action.pid].name} and {action.name})"
                    )
                crashed[action.pid] = action
        self.crashes = crashed
        self.drops = tuple(
            a for a in self.actions if isinstance(a, DropFault)
        )
        self.dups = tuple(a for a in self.actions if isinstance(a, DupFault))
        self.partitions = tuple(
            a for a in self.actions if isinstance(a, PartitionFault)
        )
        self.corruptions = tuple(
            a for a in self.actions if isinstance(a, CorruptTcpFault)
        )

    @property
    def name(self) -> str:
        if not self.actions:
            return "none"
        return "+".join(action.name for action in self.actions)

    @property
    def is_none(self) -> bool:
        return not self.actions

    def reset(self, seed: int) -> None:
        tree = RngTree(seed)
        for action in self.actions:
            action.reset(tree)

    def validate_pids(self, pids) -> None:
        """Raise when the plan targets a pid the run does not have."""
        known = set(pids)
        for action in self.actions:
            targets: tuple = ()
            if isinstance(action, CrashFault):
                targets = (action.pid,)
            elif isinstance(action, PartitionFault):
                targets = tuple(action.group)
            unknown = sorted(set(targets) - known)
            if unknown:
                raise FaultError(
                    f"fault {action.name!r} targets unknown pid(s) "
                    f"{unknown}; this run has pids {sorted(known)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.name}>"

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


FAULT_BUILDERS: dict[str, Callable[[], FaultPlan]] = {
    "none": FaultPlan,
}
"""Exact plan names. Parameterized forms are parsed in
:func:`fault_from_name`; third parties add names via
:func:`register_fault`."""


def register_fault(name: str, builder: Callable[[], FaultPlan]) -> None:
    """Register an exact fault-plan name (duplicates raise)."""
    if name in FAULT_BUILDERS:
        raise FaultError(f"fault plan {name!r} is already registered")
    FAULT_BUILDERS[name] = builder


def fault_names() -> list[str]:
    return sorted(FAULT_BUILDERS)


_CRASH_RE = re.compile(r"^crash@p(\d+)s(\d+)$")
_CRASH_RESTART_RE = re.compile(r"^crash-restart@p(\d+)s(\d+)r(\d+)$")
_DROP_RE = re.compile(r"^drop-(\d+(?:\.\d+)?)$")
_DUP_RE = re.compile(r"^dup-(\d+(?:\.\d+)?)$")
_PARTITION_RE = re.compile(r"^partition@\{(\d+(?:,\d+)*)\}t(\d+)h(\d+)$")
_CORRUPT_RE = re.compile(r"^corrupt-tcp-(\d+(?:\.\d+)?)$")

_KNOWN_FORMS = (
    "crash@p<pid>s<step>", "crash-restart@p<pid>s<step>r<step>",
    "drop-<p>", "dup-<p>", "partition@{<pids>}t<start>h<heal>",
    "corrupt-tcp-<p>", "'+'-joined combinations",
)


def _action_from_name(part: str) -> FaultAction:
    match = _CRASH_RE.match(part)
    if match:
        return CrashFault(int(match.group(1)), int(match.group(2)))
    match = _CRASH_RESTART_RE.match(part)
    if match:
        return CrashFault(
            int(match.group(1)), int(match.group(2)),
            restart=int(match.group(3)),
        )
    match = _DROP_RE.match(part)
    if match:
        return DropFault(_probability(match.group(1), "drop"))
    match = _DUP_RE.match(part)
    if match:
        return DupFault(_probability(match.group(1), "dup"))
    match = _PARTITION_RE.match(part)
    if match:
        pids = [int(p) for p in match.group(1).split(",")]
        return PartitionFault(pids, int(match.group(2)), int(match.group(3)))
    match = _CORRUPT_RE.match(part)
    if match:
        return CorruptTcpFault(_probability(match.group(1), "corrupt-tcp"))
    raise FaultError(
        f"unknown fault {part!r}: known plans are "
        f"{', '.join(fault_names())}; parameterized forms are "
        f"{', '.join(_KNOWN_FORMS)}"
    )


def fault_from_name(name: str) -> FaultPlan:
    """Parse a plan name (``registry | action['+'action...]``)."""
    if name in FAULT_BUILDERS:
        return FAULT_BUILDERS[name]()
    parts = [part for part in name.split("+") if part]
    if not parts:
        raise FaultError(
            f"unknown fault plan {name!r}: known plans are "
            f"{', '.join(fault_names())}"
        )
    actions = []
    for part in parts:
        if part == "none":
            continue
        actions.append(_action_from_name(part))
    return FaultPlan(actions)
