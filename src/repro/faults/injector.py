"""The substrate-neutral fault-injection state machine.

Both runtimes — the simulated kernel (:class:`repro.sim.runtime.Runtime`)
and the asyncio substrate (:class:`repro.net.runtime.NetRuntime`) — drive
one :class:`FaultInjector` per run through the same three hook points:

* **per-step events** — :meth:`due_events` hands back crash/restart/heal
  events whose delivery-step threshold has arrived; the runtime applies
  them (halt the process, restore a snapshot and replay its inbox,
  release held messages);
* **per-send fate** — :meth:`fate` decides what happens to each protocol
  message as it is sent: delivered (possibly in duplicate), dropped, or
  held behind a partition cut / a crashed-but-restartable recipient;
* **quiesce advance** — when nothing is deliverable, :meth:`pop_recovery`
  pulls the earliest pending *recovery* (restart or heal) forward so the
  fault schedule can never outlive the traffic: a partitioned or
  crash-restart run always quiesces. Crash events never fire early — a
  crash scheduled beyond the run's natural length simply does not
  happen.

All state here is rebuilt by :meth:`reset` from ``(plan, seed)``, so a
run under faults stays a pure function of ``(spec, seed)`` and repeat
runs are byte-identical. Held items are opaque to the injector: the sim
kernel stores withdrawn :class:`~repro.sim.network.Message` objects, the
net substrate stores un-posted ``(message, context)`` tuples.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Optional

from repro.faults.plan import FaultPlan


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault transition (``kind``: crash | restart | heal)."""

    step: int
    seq: int
    kind: str
    pid: Optional[int] = None
    index: Optional[int] = None

    @property
    def is_recovery(self) -> bool:
        return self.kind in ("restart", "heal")


class FaultInjector:
    """Per-run fault bookkeeping shared by both substrates."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.replaying = False
        self.down: set[int] = set()
        self.inbox_log: dict[int, list] = {}
        self._snapshots: dict[int, Any] = {}
        self._held: dict[tuple, list] = {}
        self._healed: set[int] = set()
        self._events: list[FaultEvent] = []

    # -- lifecycle -----------------------------------------------------------

    def reset(self, seed: int, processes: dict) -> None:
        """Re-root streams, snapshot restart targets, build the schedule."""
        self.plan.reset(seed)
        self.plan.validate_pids(processes.keys())
        self.replaying = False
        self.down = set()
        self.inbox_log = {}
        self._snapshots = {}
        self._held = {}
        self._healed = set()
        events = []
        seq = 0
        for pid in sorted(self.plan.crashes):
            crash = self.plan.crashes[pid]
            events.append(FaultEvent(crash.step, seq, "crash", pid=pid))
            seq += 1
            if crash.restart is not None:
                events.append(
                    FaultEvent(crash.restart, seq, "restart", pid=pid)
                )
                seq += 1
                # Pristine copy taken before the run starts: the restart
                # installs it and replays the logged inbox into it.
                self._snapshots[pid] = copy.deepcopy(processes[pid])
                self.inbox_log[pid] = []
        for index, part in enumerate(self.plan.partitions):
            events.append(FaultEvent(part.heal, seq, "heal", index=index))
            seq += 1
        self._events = sorted(events, key=lambda e: (e.step, e.seq))

    # -- the schedule --------------------------------------------------------

    def due_events(self, step: int) -> list[FaultEvent]:
        """Pop every event whose step threshold has arrived."""
        if not self._events or self._events[0].step > step:
            return []
        due = []
        while self._events and self._events[0].step <= step:
            due.append(self._events.pop(0))
        return due

    def pop_recovery(self) -> Optional[FaultEvent]:
        """Pop the earliest pending restart/heal (quiesce pull-forward)."""
        for i, event in enumerate(self._events):
            if event.is_recovery:
                return self._events.pop(i)
        return None

    def pending_recovery(self) -> bool:
        return any(event.is_recovery for event in self._events)

    # -- per-send decisions --------------------------------------------------

    def fate(self, sender: int, recipient: int, step: int) -> tuple:
        """``("hold", key)`` | ``("drop", None)`` | ``("deliver", copies)``.

        Held messages are exempt from drop/dup draws (they never reached
        the wire), which keeps the seeded streams aligned with the
        deterministic hold schedule.
        """
        if recipient in self.down:
            return ("hold", ("restart", recipient))
        for index, part in enumerate(self.plan.partitions):
            if (
                index not in self._healed
                and part.start <= step < part.heal
                and part.crosses(sender, recipient)
            ):
                return ("hold", ("heal", index))
        for drop in self.plan.drops:
            if drop.decide(sender, recipient):
                return ("drop", None)
        copies = 1
        for dup in self.plan.dups:
            if dup.decide(sender, recipient):
                copies += 1
        return ("deliver", copies)

    def corrupts(self, sender: int, recipient: int) -> bool:
        """Seeded wire-corruption decision (TCP transport only)."""
        return any(
            action.decide(sender, recipient)
            for action in self.plan.corruptions
        )

    # -- held messages -------------------------------------------------------

    def hold(self, key: tuple, item: Any) -> None:
        self._held.setdefault(key, []).append(item)

    def release(self, key: tuple) -> list:
        return self._held.pop(key, [])

    def mark_healed(self, index: int) -> None:
        self._healed.add(index)

    # -- crash-restart bookkeeping ------------------------------------------

    def is_restart_target(self, pid: int) -> bool:
        return pid in self._snapshots

    def go_down(self, pid: int) -> None:
        self.down.add(pid)

    def restore(self, pid: int) -> Optional[Any]:
        """A pristine process copy for a restart (None if never crashed)."""
        if pid not in self.down:
            return None
        self.down.discard(pid)
        return copy.deepcopy(self._snapshots[pid])

    def log_delivery(self, pid: int, sender: int, payload: Any) -> None:
        log = self.inbox_log.get(pid)
        if log is not None and not self.replaying:
            # Deep-copied so a recipient that mutates a delivered payload
            # cannot retroactively change what a replay feeds back in.
            log.append((sender, copy.deepcopy(payload)))


def injector_for(faults: Any) -> Optional[FaultInjector]:
    """Normalize a runtime's ``faults`` argument to an injector (or None).

    Accepts a plan name (``"crash@p2s40+drop-0.1"``), a :class:`FaultPlan`,
    an existing :class:`FaultInjector`, or ``None``/``"none"``. Empty plans
    normalize to ``None`` so the fault-free fast path stays hook-free.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return None if faults.plan.is_none else faults
    if isinstance(faults, str):
        from repro.faults.plan import fault_from_name

        faults = fault_from_name(faults)
    return None if faults.is_none else FaultInjector(faults)
