"""repro — reproduction of *Implementing Mediators with Asynchronous Cheap Talk*.

Abraham, Dolev, Geffner, Halpern (PODC 2019 / arXiv:1806.01214).

The package implements, from scratch:

* a deterministic asynchronous-network simulator with strategic
  environments (schedulers), including the paper's *relaxed* schedulers;
* normal-form Bayesian games and the paper's solution concepts
  (k-resilience, t-immunity, (k,t)-robustness and their epsilon variants);
* mediator games with arithmetic-circuit mediators, canonical form, and the
  Section 6.4 minimally-informative transform;
* the asynchronous secure-computation substrate (reliable broadcast, ABA,
  ACS, AVSS, robust Shamir openings, BCG-style t<n/4 and BKR-style t<n/3
  MPC engines);
* the cheap-talk compilers of Theorems 4.1, 4.2, 4.4 and 4.5, with both the
  AH-approach (wills) and default-move semantics for deadlock;
* analysis tooling: deviation library, empirical robustness checking,
  implementation distance, t-bisimulation/t-emulation/cotermination checks;
* the robustness-audit engine: coalition enumeration with symmetry
  reduction, compositional deviation search (exhaustive / random / greedy),
  and the (k, t, ε) robustness frontier.
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    FieldError,
    DecodingError,
    SimulationError,
    GameError,
    ProtocolError,
    CheatingDetected,
    MediatorError,
    CompilationError,
)

__all__ = [
    "ReproError",
    "FieldError",
    "DecodingError",
    "SimulationError",
    "GameError",
    "ProtocolError",
    "CheatingDetected",
    "MediatorError",
    "CompilationError",
    "__version__",
    "compile_theorem41",
    "compile_theorem42",
    "compile_theorem44",
    "compile_theorem45",
    "compile_r1",
    "MediatorGame",
    "CheapTalkGame",
    "Runtime",
    "RunResult",
    "Scheduler",
    "scheduler_zoo",
    "TimingModel",
    "Asynchronous",
    "LockStep",
    "BoundedDelay",
    "timing_from_name",
    "make_game",
    "register_game",
    "GameDef",
    "register_family",
    "family_names",
    "random_game_def",
    "ScenarioSpec",
    "RunRecord",
    "ExperimentResult",
    "ExperimentRunner",
    "run_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "AuditSpec",
    "AuditResult",
    "run_audit",
    "run_frontier",
    "get_audit",
    "register_audit",
    "audit_names",
    "run_fuzz",
    "ResultStore",
    "StoreOutcome",
    "open_store",
    "resolve_store_path",
    "JobSpec",
    "JobStatus",
    "JobClient",
    "JobServer",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
]

_SIM_EXPORTS = (
    "Runtime",
    "RunResult",
    "Scheduler",
    "scheduler_zoo",
    "TimingModel",
    "Asynchronous",
    "LockStep",
    "BoundedDelay",
    "timing_from_name",
)
_GAME_REGISTRY_EXPORTS = ("make_game", "register_game")
_GAME_DSL_EXPORTS = (
    "GameDef",
    "register_family",
    "family_names",
    "random_game_def",
)
_EXPERIMENT_EXPORTS = (
    "ScenarioSpec",
    "RunRecord",
    "ExperimentResult",
    "ExperimentRunner",
    "run_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
)
_STORE_EXPORTS = (
    "ResultStore",
    "StoreOutcome",
    "open_store",
    "resolve_store_path",
)
_SERVICE_EXPORTS = (
    "JobSpec",
    "JobStatus",
    "JobClient",
    "JobServer",
)
_OBS_EXPORTS = (
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
)
_AUDIT_EXPORTS = (
    "AuditSpec",
    "AuditResult",
    "run_audit",
    "run_frontier",
    "get_audit",
    "register_audit",
    "audit_names",
    "run_fuzz",
)


def __getattr__(name):
    """Lazy re-exports of the primary API (avoids import cycles at load)."""
    if name in (
        "compile_theorem41",
        "compile_theorem42",
        "compile_theorem44",
        "compile_theorem45",
    ):
        from repro import cheaptalk

        return getattr(cheaptalk, name)
    if name == "compile_r1":
        from repro.cheaptalk.sync import compile_r1

        return compile_r1
    if name == "CheapTalkGame":
        from repro.cheaptalk import CheapTalkGame

        return CheapTalkGame
    if name == "MediatorGame":
        from repro.mediator import MediatorGame

        return MediatorGame
    if name in _SIM_EXPORTS:
        from repro import sim

        return getattr(sim, name)
    if name in _GAME_REGISTRY_EXPORTS:
        from repro.games import registry

        return getattr(registry, name)
    if name in _GAME_DSL_EXPORTS:
        from repro import games

        return getattr(games, name)
    if name in _EXPERIMENT_EXPORTS:
        from repro import experiments

        return getattr(experiments, name)
    if name in _AUDIT_EXPORTS:
        from repro import audit

        return getattr(audit, name)
    if name in _STORE_EXPORTS:
        from repro import store

        return getattr(store, name)
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    if name in _OBS_EXPORTS:
        from repro import obs

        return getattr(obs, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
