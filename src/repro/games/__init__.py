"""Normal-form Bayesian games and the paper's solution concepts."""

from repro.games.bayesian import BayesianGame, TypeSpace
from repro.games.strategies import (
    Strategy,
    PureStrategy,
    MixedStrategy,
    ConstantStrategy,
    UniformStrategy,
    StrategyProfile,
)
from repro.games.outcomes import (
    OutcomeMap,
    outcome_map,
    statistical_distance,
    outcome_map_distance,
    expected_utilities,
    conditional_expected_utility,
)
from repro.games.solution import (
    SolutionReport,
    check_k_resilient,
    check_t_immune,
    check_kt_robust,
    check_nash,
    find_pure_nash,
    tighten_epsilon,
)
from repro.games.punishment import check_punishment_strategy
from repro.games.dsl import (
    BOT,
    GameDef,
    decoding_pairs,
    encoding_pairs,
    shared_actions,
)
from repro.games import library
from repro.games.families import (
    family_names,
    iter_families,
    make_family_def,
    parse_game_name,
    random_game_def,
    register_family,
)

__all__ = [
    "BOT",
    "GameDef",
    "decoding_pairs",
    "encoding_pairs",
    "family_names",
    "iter_families",
    "make_family_def",
    "parse_game_name",
    "random_game_def",
    "register_family",
    "shared_actions",
    "BayesianGame",
    "TypeSpace",
    "Strategy",
    "PureStrategy",
    "MixedStrategy",
    "ConstantStrategy",
    "UniformStrategy",
    "StrategyProfile",
    "OutcomeMap",
    "outcome_map",
    "statistical_distance",
    "outcome_map_distance",
    "expected_utilities",
    "conditional_expected_utility",
    "SolutionReport",
    "check_k_resilient",
    "check_t_immune",
    "check_kt_robust",
    "check_nash",
    "find_pure_nash",
    "tighten_epsilon",
    "check_punishment_strategy",
    "library",
]
