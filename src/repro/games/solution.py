"""Exact solution-concept checkers (Definitions 3.1–3.6).

All checkers work on the *underlying* normal-form Bayesian game, where
expected utilities are exact sums. (Asynchronous extension games are checked
empirically by :mod:`repro.analysis.robustness`, which reduces runs to
outcome samples and reuses the inequalities implemented here.)

Key observation used throughout: the coalition-aware utility
``u_i(Γ, σ, x_K)`` conditions on the coalition's joint type being ``x_K``,
so only the coalition's behaviour *at* ``x_K`` matters — a deviation is
checked pointwise per (coalition, x_K) as a distribution over the
coalition's joint action tuples.

For the "no member is better off" (weak) variants, coalition members may
correlate and mix, so a profitable deviation is a *distribution* over joint
actions dominating the baseline componentwise; we find one (or certify none
exists) with a small linear program. For the strong variants and for
t-immunity, pure joint actions suffice (the relevant objective is linear,
so its optimum is at a vertex).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.errors import GameError
from repro.games.bayesian import BayesianGame
from repro.games.outcomes import conditional_expected_utility
from repro.games.strategies import JointDeviation, PureStrategy, StrategyProfile

_TOL = 1e-9


@dataclass
class Violation:
    """A concrete witness that a solution concept fails."""

    kind: str
    coalition: tuple[int, ...]
    malicious: tuple[int, ...]
    types: tuple
    detail: str
    gain: float


@dataclass
class SolutionReport:
    """Result of a solution-concept check."""

    concept: str
    holds: bool
    violations: list[Violation] = field(default_factory=list)
    checks: int = 0
    margin: Optional[float] = None
    """Smallest slack observed over all satisfied constraints (if tracked)."""

    def __bool__(self) -> bool:
        return self.holds


def _coalitions(players: Sequence[int], max_size: int, min_size: int = 1):
    players = list(players)
    for size in range(min_size, max_size + 1):
        yield from itertools.combinations(players, size)


def _coalition_payoff_matrix(
    game: BayesianGame,
    profile: StrategyProfile,
    coalition: tuple[int, ...],
    x_k: tuple,
) -> tuple[list[tuple], np.ndarray]:
    """Rows: joint coalition actions; columns: coalition members' utilities."""
    action_tuples = list(itertools.product(*(game.action_sets[i] for i in coalition)))
    matrix = np.zeros((len(action_tuples), len(coalition)))
    for row, actions in enumerate(action_tuples):
        deviation = JointDeviation(coalition, lambda _x, a=actions: {a: 1.0})
        for col, i in enumerate(coalition):
            matrix[row, col] = conditional_expected_utility(
                game, profile, i, coalition, x_k, deviations=[deviation]
            )
    return action_tuples, matrix


def _baseline(
    game: BayesianGame,
    profile: StrategyProfile,
    coalition: tuple[int, ...],
    x_k: tuple,
    members: Sequence[int],
) -> np.ndarray:
    return np.array(
        [
            conditional_expected_utility(game, profile, i, coalition, x_k)
            for i in members
        ]
    )


def _max_min_gain(matrix: np.ndarray, baseline: np.ndarray) -> float:
    """max over mixtures w of min_i (w·U − B)_i, via LP.

    This is the coalition's best guaranteed improvement: positive means some
    (possibly correlated, mixed) deviation makes *every* member better off.
    """
    n_rows, n_cols = matrix.shape
    # Variables: w_0..w_{r-1}, eps. Maximize eps.
    c = np.zeros(n_rows + 1)
    c[-1] = -1.0
    a_ub = np.zeros((n_cols, n_rows + 1))
    b_ub = np.zeros(n_cols)
    for col in range(n_cols):
        a_ub[col, :n_rows] = -matrix[:, col]
        a_ub[col, -1] = 1.0
        b_ub[col] = -baseline[col]
    a_eq = np.zeros((1, n_rows + 1))
    a_eq[0, :n_rows] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, 1.0)] * n_rows + [(None, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
                  method="highs")
    if not res.success:  # pragma: no cover - defensive
        raise GameError(f"deviation LP failed: {res.message}")
    return float(-res.fun)


def check_k_resilient(
    game: BayesianGame,
    profile: StrategyProfile,
    k: int,
    epsilon: float = 0.0,
    strong: bool = False,
    fixed_malicious: tuple[int, ...] = (),
) -> SolutionReport:
    """Check (ε-)(strong) k-resilience (Definitions 3.1 / 3.2).

    ``fixed_malicious`` excludes those players from coalition membership —
    used by the robustness checker, where K and T must be disjoint.

    Weak resilience fails iff some coalition mixture improves *all* members
    by ≥ ε (strictly, for ε = 0); strong resilience fails iff some pure joint
    action improves *any* member.
    """
    concept = ("strong " if strong else "") + (
        f"{epsilon}-" if epsilon else ""
    ) + f"{k}-resilience"
    report = SolutionReport(concept=concept, holds=True, margin=float("inf"))
    eligible = [i for i in game.players() if i not in fixed_malicious]
    for coalition in _coalitions(eligible, k):
        for x_k in game.type_space.coalition_profiles(coalition):
            report.checks += 1
            baseline = _baseline(game, profile, coalition, x_k, coalition)
            _, matrix = _coalition_payoff_matrix(game, profile, coalition, x_k)
            if strong:
                gain = float((matrix - baseline[None, :]).max())
            else:
                gain = _max_min_gain(matrix, baseline)
            threshold = epsilon if epsilon > 0 else _TOL
            if gain >= threshold - (_TOL if epsilon > 0 else 0.0):
                report.holds = False
                report.violations.append(
                    Violation(
                        kind=concept,
                        coalition=coalition,
                        malicious=(),
                        types=x_k,
                        detail=(
                            "coalition deviation improves "
                            + ("some member" if strong else "all members")
                            + f" by {gain:.6g}"
                        ),
                        gain=gain,
                    )
                )
            else:
                report.margin = min(report.margin, threshold - gain)
    return report


def check_nash(game: BayesianGame, profile: StrategyProfile,
               epsilon: float = 0.0) -> SolutionReport:
    """Bayesian Nash equilibrium = 1-resilience."""
    report = check_k_resilient(game, profile, 1, epsilon=epsilon)
    report.concept = "Nash" if not epsilon else f"{epsilon}-Nash"
    return report


def find_pure_nash(game: BayesianGame) -> list[tuple]:
    """Enumerate all pure-strategy Bayesian Nash equilibria of a small game.

    A pure strategy profile assigns each player a map from its types to
    actions; for complete-information games this is one action per player.
    Returns the equilibrium profiles as tuples of per-player
    {type: action} dicts (or plain actions when the player has one type).
    Exponential — intended for the library's toy games.
    """
    per_player_maps = []
    for i in game.players():
        own_types = game.type_space.player_types(i)
        maps = [
            dict(zip(own_types, combo))
            for combo in itertools.product(game.action_sets[i],
                                           repeat=len(own_types))
        ]
        per_player_maps.append(maps)
    equilibria = []
    for combo in itertools.product(*per_player_maps):
        profile = StrategyProfile(
            [PureStrategy(lambda ty, m=m: m[ty]) for m in combo]
        )
        if check_k_resilient(game, profile, 1).holds:
            simplified = tuple(
                next(iter(m.values())) if len(m) == 1 else dict(m)
                for m in combo
            )
            equilibria.append(simplified)
    return equilibria


def tighten_epsilon(
    game: BayesianGame, profile: StrategyProfile, k: int, epsilon: float
) -> float:
    """Proposition 6.6/6.7: improve an ε bound to some ε₀ < ε.

    For a finite game, an ε-k-resilient profile's worst coalition gain ε₁
    is attained (compactness) and strictly below ε; the propositions take
    ε₀ = (ε + ε₁)/2. We compute ε₁ exactly as the max over coalitions,
    conditionings and (mixed) deviations of the min-member gain, and return
    the propositions' midpoint. Raises if the profile is not actually
    ε-k-resilient.
    """
    worst = -float("inf")
    for coalition in _coalitions(list(game.players()), k):
        for x_k in game.type_space.coalition_profiles(coalition):
            baseline = _baseline(game, profile, coalition, x_k, coalition)
            _, matrix = _coalition_payoff_matrix(game, profile, coalition, x_k)
            worst = max(worst, _max_min_gain(matrix, baseline))
    if worst >= epsilon:
        raise GameError(
            f"profile is not {epsilon}-{k}-resilient (worst gain {worst:.6g})"
        )
    return (epsilon + max(worst, 0.0)) / 2.0


def check_t_immune(
    game: BayesianGame,
    profile: StrategyProfile,
    t: int,
    epsilon: float = 0.0,
) -> SolutionReport:
    """Check (ε-)t-immunity (Definitions 3.3 / 3.5).

    Fails iff players in some T (|T| ≤ t) can play so that some outsider's
    conditional utility drops below baseline (by ≥ ε for the ε variant —
    Def 3.5 requires u_i(dev) > u_i(σ) − ε, so a drop of exactly ε fails).
    """
    concept = (f"{epsilon}-" if epsilon else "") + f"{t}-immunity"
    report = SolutionReport(concept=concept, holds=True, margin=float("inf"))
    if t == 0:
        report.checks = 1
        return report
    for malicious in _coalitions(list(game.players()), t):
        outsiders = [i for i in game.players() if i not in malicious]
        for x_t in game.type_space.coalition_profiles(malicious):
            action_tuples = list(
                itertools.product(*(game.action_sets[i] for i in malicious))
            )
            for i in outsiders:
                report.checks += 1
                base = conditional_expected_utility(
                    game, profile, i, malicious, x_t
                )
                worst = min(
                    conditional_expected_utility(
                        game,
                        profile,
                        i,
                        malicious,
                        x_t,
                        deviations=[
                            JointDeviation(malicious, lambda _x, a=a: {a: 1.0})
                        ],
                    )
                    for a in action_tuples
                )
                drop = base - worst
                threshold = epsilon if epsilon > 0 else _TOL
                if drop >= threshold - (_TOL if epsilon > 0 else 0.0):
                    report.holds = False
                    report.violations.append(
                        Violation(
                            kind=concept,
                            coalition=(),
                            malicious=malicious,
                            types=x_t,
                            detail=f"player {i} harmed by {drop:.6g}",
                            gain=drop,
                        )
                    )
                else:
                    report.margin = min(report.margin, threshold - drop)
    return report


def _pure_strategy_functions(game: BayesianGame, players: tuple[int, ...]):
    """All pure joint strategies for ``players``: maps x_T -> joint action.

    Needed for robustness: the fixed malicious strategy τ_T is a *function*
    of T's types (different x_T cells interact through the conditioning on
    x_K only).
    """
    type_profiles = game.type_space.coalition_profiles(players)
    action_tuples = list(itertools.product(*(game.action_sets[i] for i in players)))
    for assignment in itertools.product(action_tuples, repeat=len(type_profiles)):
        yield dict(zip(type_profiles, assignment))


def check_kt_robust(
    game: BayesianGame,
    profile: StrategyProfile,
    k: int,
    t: int,
    epsilon: float = 0.0,
    strong: bool = False,
) -> SolutionReport:
    """Check (ε-)(strong) (k,t)-robustness (Definitions 3.4 / 3.6).

    Per Def 3.4 this is t-immunity plus: for every T (|T| ≤ t) and every
    strategy τ_T for T, the profile (σ_-T, τ_T) is k-resilient among the
    remaining players in the game where T is pinned to τ_T.

    Malicious strategies are enumerated over *pure* joint functions of x_T
    (sound for finding violations; for certification on the game library
    this is exact because the relevant extremal deviations are pure — see
    DESIGN.md §6).
    """
    concept = ("strong " if strong else "") + (
        f"{epsilon}-" if epsilon else ""
    ) + f"({k},{t})-robustness"
    report = SolutionReport(concept=concept, holds=True, margin=float("inf"))

    immunity = check_t_immune(game, profile, t, epsilon=epsilon)
    report.checks += immunity.checks
    if not immunity.holds:
        report.holds = False
        report.violations.extend(immunity.violations)
    if immunity.margin is not None:
        report.margin = min(report.margin, immunity.margin)

    malicious_sets = [()] + list(_coalitions(list(game.players()), t))
    for malicious in malicious_sets:
        eligible = [i for i in game.players() if i not in malicious]
        if not eligible:
            continue
        tau_choices = (
            [None] if not malicious else _pure_strategy_functions(game, malicious)
        )
        for tau in tau_choices:
            if tau is None:
                fixed_profile = profile
                deviation_for_tau: list[JointDeviation] = []
            else:
                deviation_for_tau = [
                    JointDeviation(
                        malicious, lambda x_t, m=tau: {m[tuple(x_t)]: 1.0}
                    )
                ]
                fixed_profile = profile
            for coalition in _coalitions(eligible, k):
                for x_k in game.type_space.coalition_profiles(coalition):
                    report.checks += 1
                    base = np.array(
                        [
                            conditional_expected_utility(
                                game, fixed_profile, i, coalition, x_k,
                                deviations=deviation_for_tau,
                            )
                            for i in coalition
                        ]
                    )
                    action_tuples = list(
                        itertools.product(
                            *(game.action_sets[i] for i in coalition)
                        )
                    )
                    matrix = np.zeros((len(action_tuples), len(coalition)))
                    for row, actions in enumerate(action_tuples):
                        devs = deviation_for_tau + [
                            JointDeviation(
                                coalition, lambda _x, a=actions: {a: 1.0}
                            )
                        ]
                        for col, i in enumerate(coalition):
                            matrix[row, col] = conditional_expected_utility(
                                game, fixed_profile, i, coalition, x_k,
                                deviations=devs,
                            )
                    if strong:
                        gain = float((matrix - base[None, :]).max())
                    else:
                        gain = _max_min_gain(matrix, base)
                    threshold = epsilon if epsilon > 0 else _TOL
                    if gain >= threshold - (_TOL if epsilon > 0 else 0.0):
                        report.holds = False
                        report.violations.append(
                            Violation(
                                kind=concept,
                                coalition=coalition,
                                malicious=malicious,
                                types=x_k,
                                detail=(
                                    f"with malicious {malicious} fixed, coalition "
                                    f"gains {gain:.6g}"
                                ),
                                gain=gain,
                            )
                        )
                    else:
                        report.margin = min(report.margin, threshold - gain)
    return report
