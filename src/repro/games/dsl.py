"""Declarative, JSON-round-trippable game definitions.

A :class:`GameDef` is the *data* form of a game: everything a
:class:`~repro.games.library.GameSpec` carries — type spaces, payoffs,
the mediator function, punishment profile, default moves, circuit
encodings — expressed as plain JSON values instead of Python callables.
``GameDef.compile()`` turns the data into a live ``GameSpec``;
``to_json``/``from_json`` round-trip losslessly, so games can be stored in
files, shipped across ``multiprocessing`` workers by name, generated
programmatically (:mod:`repro.games.families`), and diffed.

The declarative sub-languages:

* **payoff** — either an explicit ``table`` of ``[types, actions,
  payoffs]`` cells, or an ``expr``: a restricted arithmetic expression
  evaluated per player with ``i``/``n``/``types``/``actions``/``me``/
  ``my_type``/``bot`` bound, plus ``count(a)`` (occurrences of ``a`` in
  the action profile), ``others`` (every pid except ``i``), the usual
  ``sum``/``min``/``max``/``abs``/``len``/``any``/``all``/``round``, and
  ``shamir_secret(types, modulus, degree)``.  Named sub-expressions go in
  ``where`` (visible to each other and to the final expression; they are
  resolved to a fixed point, so entry order — which JSON serialization
  may rewrite — never matters); free constants go in ``params``. The
  evaluator is a strict
  AST whitelist — no attribute access, no builtins — so game files are
  data, not code.
* **mediator** — a named rule with parameters, resolved through
  :mod:`repro.mediator.rules` (``common-coin``, ``majority``,
  ``rotate-duty``, ``table``, ``fixed``, ``shamir-decode``, plus user
  registrations).
* **types** — ``single`` / ``uniform`` / ``independent-uniform`` /
  ``shamir-shares`` (all Shamir share profiles of a given modulus and
  degree, the rational-secret-sharing type space).
* **punishment** — ``constant`` or ``uniform`` per-player strategies (or
  an explicit per-player ``profile`` of those), with a separate
  ``punishment_strength``.
* **default_move** — ``constant`` or ``own-type``.

The six legacy library games (and the four extras) are all expressed this
way in :mod:`repro.games.library` / :mod:`repro.games.library_extra`;
golden tests pin their payoffs and per-seed mediator draws to the
pre-DSL hand-written implementations.
"""

from __future__ import annotations

import ast
import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import GameError

BOT = "⊥"
"""The opt-out action of the Section 6.4 game (JSON-safe: a string)."""


def _freeze(value: Any) -> Any:
    """Recursively convert lists to tuples (JSON arrays come back as lists)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return {k: _freeze(v) for k, v in value.items()}
    return value


def _plain(value: Any) -> Any:
    """Recursively convert tuples to lists for JSON emission."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, list):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


# ---------------------------------------------------------------------------
# Safe payoff expressions
# ---------------------------------------------------------------------------

_ALLOWED_NODES = (
    ast.Expression,
    ast.Constant,
    ast.Name,
    ast.Load,
    ast.Store,  # generator-expression loop targets
    ast.Tuple,
    ast.List,
    ast.BinOp,
    ast.UnaryOp,
    ast.BoolOp,
    ast.IfExp,
    ast.Compare,
    ast.Call,
    ast.Subscript,
    ast.Slice,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.USub,
    ast.UAdd,
    ast.Not,
    ast.And,
    ast.Or,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.In,
    ast.NotIn,
)


def compile_expression(text: str, context: str = "payoff"):
    """Parse and compile a restricted expression; reject anything else.

    The whitelist admits arithmetic, comparisons, boolean logic,
    conditionals, indexing, tuple/list literals, calls, and generator
    expressions — and nothing with a dot in it, so there is no route from
    an expression to attributes, imports, or builtins.
    """
    if not isinstance(text, str) or not text.strip():
        raise GameError(f"{context} expression must be a non-empty string")
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise GameError(f"bad {context} expression {text!r}: {exc}") from None
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise GameError(
                f"{context} expression {text!r} uses forbidden syntax "
                f"({type(node).__name__}); allowed: arithmetic, comparisons, "
                "conditionals, indexing, calls, generator expressions"
            )
    return compile(tree, f"<{context}>", "eval")


def _shamir_secret(types, modulus: int, degree: int) -> int:
    """The constant term interpolated from the first ``degree + 1`` shares."""
    from repro.field import GF, lagrange_interpolate

    f = GF(int(modulus))
    points = [(x + 1, s) for x, s in enumerate(types[: int(degree) + 1])]
    return int(lagrange_interpolate(f, points)(0))


_EXPR_HELPERS = {
    "sum": sum,
    "min": min,
    "max": max,
    "abs": abs,
    "len": len,
    "any": any,
    "all": all,
    "round": round,
    "int": int,
    "float": float,
    "shamir_secret": _shamir_secret,
    "bot": BOT,
}


def compile_payoff(payoff: dict, n: int) -> Callable:
    """Compile a payoff definition into ``(types, actions) -> payoffs``."""
    if not isinstance(payoff, dict) or "kind" not in payoff:
        raise GameError(
            f"payoff must be a dict with a 'kind' key, got {payoff!r}"
        )
    kind = payoff["kind"]
    if kind == "table":
        return _compile_payoff_table(payoff, n)
    if kind == "expr":
        return _compile_payoff_expr(payoff, n)
    raise GameError(
        f"unknown payoff kind {kind!r}; one of: table, expr"
    )


def _compile_payoff_table(payoff: dict, n: int) -> Callable:
    cells: dict[tuple, tuple] = {}
    for entry in payoff.get("cells", ()):
        try:
            types, actions, payoffs = entry
        except (TypeError, ValueError):
            raise GameError(
                f"payoff table cell must be [types, actions, payoffs], "
                f"got {entry!r}"
            ) from None
        if len(payoffs) != n:
            raise GameError(
                f"payoff table cell {entry!r} has {len(payoffs)} payoffs "
                f"for {n} players"
            )
        cells[(_freeze(tuple(types)), _freeze(tuple(actions)))] = tuple(
            float(u) for u in payoffs
        )
    if not cells:
        raise GameError("payoff table needs at least one cell")

    def utility(types, actions):
        key = (tuple(types), tuple(actions))
        try:
            return cells[key]
        except KeyError:
            raise GameError(
                f"payoff table has no cell for types={key[0]!r} "
                f"actions={key[1]!r}"
            ) from None

    return utility


def _compile_payoff_expr(payoff: dict, n: int) -> Callable:
    code = compile_expression(payoff["expr"], "payoff")
    where = [
        (name, compile_expression(expr, f"where[{name}]"))
        for name, expr in payoff.get("where", {}).items()
    ]
    params = dict(payoff.get("params", {}))
    reserved = set(_EXPR_HELPERS) | {
        "i", "n", "types", "actions", "me", "my_type", "count", "others",
    }
    clash = (set(params) | {name for name, _ in where}) & reserved
    if clash:
        raise GameError(
            f"payoff names shadow built-ins: {', '.join(sorted(clash))}"
        )

    def utility(types, actions):
        counts: dict[Any, int] = {}
        for a in actions:
            counts[a] = counts.get(a, 0) + 1

        def count(value):
            return counts.get(value, 0)

        base = dict(_EXPR_HELPERS)
        base.update(params)
        base.update(
            n=n, types=tuple(types), actions=tuple(actions), count=count,
        )
        payoffs = []
        for i in range(n):
            env = dict(base)
            env.update(
                i=i,
                me=actions[i],
                my_type=types[i],
                others=tuple(j for j in range(n) if j != i),
            )
            # Single namespace (globals) so generator expressions — which
            # execute in their own frame and cannot see eval() locals —
            # still resolve the bound names.
            env["__builtins__"] = {}
            try:
                # `where` entries may reference each other; resolve to a
                # fixed point rather than trusting dict order, which JSON
                # serialization (sort_keys) is free to rewrite.
                pending = list(where)
                while pending:
                    deferred = []
                    for name, sub in pending:
                        try:
                            env[name] = eval(sub, env)
                        except NameError:
                            deferred.append((name, sub))
                    if len(deferred) == len(pending):
                        unresolved = ", ".join(name for name, _ in deferred)
                        raise GameError(
                            f"payoff where-entries never resolve "
                            f"(unknown or cyclic names): {unresolved}"
                        )
                    pending = deferred
                value = eval(code, env)
            except GameError:
                raise
            except Exception as exc:  # noqa: BLE001 — surface as GameError
                raise GameError(
                    f"payoff expression failed for player {i}: "
                    f"{type(exc).__name__}: {exc}"
                ) from None
            payoffs.append(float(value))
        return payoffs

    return utility


# ---------------------------------------------------------------------------
# Type spaces, punishment, default moves
# ---------------------------------------------------------------------------

def compile_type_space(types: dict, n: int):
    from repro.games.bayesian import TypeSpace

    if not isinstance(types, dict) or "kind" not in types:
        raise GameError(
            f"types must be a dict with a 'kind' key, got {types!r}"
        )
    kind = types["kind"]
    if kind == "single":
        profile = _freeze(tuple(types.get("profile", ())))
        if len(profile) != n:
            raise GameError(
                f"single type profile {profile!r} has wrong arity (n={n})"
            )
        return TypeSpace.single(profile)
    if kind == "uniform":
        profiles = [_freeze(tuple(p)) for p in types.get("profiles", ())]
        if any(len(p) != n for p in profiles):
            raise GameError("uniform type profiles must all have arity n")
        return TypeSpace.uniform(profiles)
    if kind == "independent-uniform":
        values = [list(v) for v in types.get("values", ())]
        if len(values) != n:
            raise GameError(
                "independent-uniform needs one value list per player"
            )
        return TypeSpace.independent_uniform(values)
    if kind == "shamir-shares":
        modulus = int(types.get("modulus", 0))
        degree = int(types.get("degree", 0))
        if modulus < 2 or degree < 0:
            raise GameError("shamir-shares needs modulus >= 2 and degree >= 0")
        xs = list(range(1, n + 1))
        profiles = []
        for coeffs in itertools.product(range(modulus), repeat=degree + 1):
            profiles.append(tuple(
                sum(c * pow(x, j, modulus) for j, c in enumerate(coeffs))
                % modulus
                for x in xs
            ))
        return TypeSpace.uniform(profiles)
    raise GameError(
        f"unknown type-space kind {kind!r}; one of: single, uniform, "
        "independent-uniform, shamir-shares"
    )


def _compile_strategy(entry: dict):
    from repro.games.strategies import ConstantStrategy, UniformStrategy

    kind = entry.get("kind")
    if kind == "constant":
        return ConstantStrategy(_freeze(entry.get("action")))
    if kind == "uniform":
        actions = [_freeze(a) for a in entry.get("actions", ())]
        if not actions:
            raise GameError("uniform punishment needs a non-empty action list")
        return UniformStrategy(actions)
    raise GameError(
        f"unknown punishment strategy kind {kind!r}; one of: constant, uniform"
    )


def compile_punishment(punishment: Optional[dict], n: int):
    from repro.games.strategies import StrategyProfile

    if punishment is None:
        return None
    if not isinstance(punishment, dict) or "kind" not in punishment:
        raise GameError(
            f"punishment must be a dict with a 'kind' key, got {punishment!r}"
        )
    if punishment["kind"] == "profile":
        strategies = [_compile_strategy(e) for e in punishment.get("players", ())]
        if len(strategies) != n:
            raise GameError("punishment profile needs one strategy per player")
        return StrategyProfile(strategies)
    return StrategyProfile([_compile_strategy(punishment)] * n)


def compile_default_move(default: Optional[dict]):
    if default is None:
        return None
    if not isinstance(default, dict) or "kind" not in default:
        raise GameError(
            f"default_move must be a dict with a 'kind' key, got {default!r}"
        )
    kind = default["kind"]
    if kind == "constant":
        action = _freeze(default.get("action"))
        return lambda i, t: action
    if kind == "own-type":
        return lambda i, t: t
    raise GameError(
        f"unknown default_move kind {kind!r}; one of: constant, own-type"
    )


# ---------------------------------------------------------------------------
# GameDef
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GameDef:
    """A declarative game definition (pure data, JSON-round-trippable)."""

    name: str
    n: int
    actions: tuple
    """Per-player action tuples (``shared_actions`` builds the common case)."""

    types: dict
    payoff: dict
    mediator: dict
    punishment: Optional[dict] = None
    punishment_strength: int = 0
    default_move: Optional[dict] = None
    type_encoding: tuple = ()
    """``((type value, small int), ...)`` pairs for the circuit path."""

    action_decoding: tuple = ()
    """``((small int, action value), ...)`` pairs decoding circuit outputs."""

    notes: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", _freeze(self.actions))
        object.__setattr__(self, "types", _freeze(self.types))
        object.__setattr__(self, "payoff", _freeze(self.payoff))
        object.__setattr__(self, "mediator", _freeze(self.mediator))
        object.__setattr__(self, "punishment", _freeze(self.punishment))
        object.__setattr__(self, "default_move", _freeze(self.default_move))
        object.__setattr__(self, "type_encoding", _freeze(self.type_encoding))
        object.__setattr__(
            self, "action_decoding", _freeze(self.action_decoding)
        )
        if self.n < 1:
            raise GameError("GameDef needs n >= 1")
        if len(self.actions) != self.n:
            raise GameError(
                f"GameDef {self.name!r} needs one action tuple per player "
                f"(got {len(self.actions)} for n={self.n})"
            )
        for i, acts in enumerate(self.actions):
            if not isinstance(acts, tuple) or not acts:
                raise GameError(f"player {i} has an empty action set")

    # -- compilation ---------------------------------------------------------

    def compile(self):
        """Build the live :class:`~repro.games.library.GameSpec`."""
        from repro.games.bayesian import BayesianGame
        from repro.games.library import GameSpec
        # Imported lazily: repro.mediator.__init__ pulls in the protocol
        # layer, which itself imports GameSpec from the library this module
        # feeds — a cycle at import time, but not at compile time.
        from repro.mediator.rules import build_mediator

        utility = compile_payoff(self.payoff, self.n)
        game = BayesianGame(
            n=self.n,
            action_sets=[list(a) for a in self.actions],
            type_space=compile_type_space(self.types, self.n),
            utility=utility,
            name=self.name,
        )
        mediator_fn, mediator_dist = build_mediator(
            dict(self.mediator), self.n
        )
        return GameSpec(
            name=self.name,
            game=game,
            mediator_fn=mediator_fn,
            mediator_dist=mediator_dist,
            type_encoding={k: v for k, v in self.type_encoding},
            action_decoding={k: v for k, v in self.action_decoding},
            punishment=compile_punishment(self.punishment, self.n),
            punishment_strength=self.punishment_strength,
            default_moves=compile_default_move(self.default_move),
            notes=self.notes,
            definition=self,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return _plain(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "GameDef":
        if not isinstance(data, dict):
            raise GameError(f"GameDef JSON must be an object, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise GameError(
                f"unknown GameDef fields: {', '.join(sorted(unknown))}"
            )
        missing = {"name", "n", "actions", "types", "payoff", "mediator"} - set(
            data
        )
        if missing:
            raise GameError(
                f"GameDef JSON is missing fields: {', '.join(sorted(missing))}"
            )
        return cls(**{key: _freeze(value) for key, value in data.items()})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GameDef":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GameError(f"bad GameDef JSON: {exc}") from None
        return cls.from_dict(data)


def shared_actions(n: int, actions) -> tuple:
    """The common case: every player has the same action set."""
    return tuple(tuple(actions) for _ in range(n))


def encoding_pairs(values) -> tuple:
    """``value -> index`` encoding pairs in the given order."""
    return tuple((value, index) for index, value in enumerate(values))


def decoding_pairs(values) -> tuple:
    """``index -> value`` decoding pairs in the given order."""
    return tuple((index, value) for index, value in enumerate(values))
