"""Punishment strategies (Definition 4.3).

A strategy profile ρ in the underlying game Γ is an *m-punishment strategy*
with respect to an equilibrium σ' of an extension Γ' if, whenever all but at
most m players play their part of ρ, every one of the remaining players ends
up strictly worse off than under σ' — no matter what the remaining players
do. Theorems 4.4 and 4.5 consume such strategies by placing them in the
honest players' wills: deadlock then hurts every potential deviator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.games.bayesian import BayesianGame
from repro.games.outcomes import conditional_expected_utility
from repro.games.solution import SolutionReport, Violation, _coalitions
from repro.games.strategies import JointDeviation, StrategyProfile

_TOL = 1e-9


@dataclass
class PunishmentSpec:
    """A punishment profile bundled with its certified strength.

    ``max_m`` is the largest m for which the profile was verified to be an
    m-punishment strategy against the given equilibrium payoffs.
    """

    profile: StrategyProfile
    max_m: int
    margin: float


def check_punishment_strategy(
    game: BayesianGame,
    punishment: StrategyProfile,
    m: int,
    equilibrium_payoff: Callable[[int, tuple], float],
    strong: bool = False,
) -> SolutionReport:
    """Verify Definition 4.3 for coalition sizes 1..m.

    ``equilibrium_payoff(i, x_K)`` must return u_i(Γ', σ', σe, x_K) — the
    deviators' payoff under the extension-game equilibrium. For
    (k,t)-robust equilibria this is scheduler-independent (Corollary 6.3),
    so a single number per (player, coalition-type) is well-defined.

    The check: for every K with 1 ≤ |K| ≤ m, every joint K-action (pure
    suffices: each player's utility is linear in the coalition's joint
    distribution, so the max is at a vertex), every x_K and every i in K,

        equilibrium_payoff(i, x_K)  >  u_i(Γ, (a_K, ρ_-K), x_K).

    ``strong=True`` additionally requires the inequality for *all* i in K
    under the best coalition response for each member separately — which for
    pure enumeration coincides with the plain check, so the flag only
    affects the report label (kept for API symmetry with the paper's
    "strong punishment" wording in Theorems 4.4/4.5).
    """
    label = ("strong " if strong else "") + f"{m}-punishment"
    report = SolutionReport(concept=label, holds=True, margin=float("inf"))
    for coalition in _coalitions(list(game.players()), m):
        action_tuples = list(
            itertools.product(*(game.action_sets[i] for i in coalition))
        )
        for x_k in game.type_space.coalition_profiles(coalition):
            for actions in action_tuples:
                deviation = JointDeviation(
                    coalition, lambda _x, a=actions: {a: 1.0}
                )
                for i in coalition:
                    report.checks += 1
                    punished = conditional_expected_utility(
                        game, punishment, i, coalition, x_k,
                        deviations=[deviation],
                    )
                    target = equilibrium_payoff(i, x_k)
                    gap = target - punished
                    if gap <= _TOL:
                        report.holds = False
                        report.violations.append(
                            Violation(
                                kind=label,
                                coalition=coalition,
                                malicious=(),
                                types=x_k,
                                detail=(
                                    f"player {i} playing {actions!r} against the "
                                    f"punishment gets {punished:.6g} >= "
                                    f"equilibrium {target:.6g}"
                                ),
                                gain=-gap,
                            )
                        )
                    else:
                        report.margin = min(report.margin, gap)
    return report


def certify_punishment(
    game: BayesianGame,
    punishment: StrategyProfile,
    equilibrium_payoff: Callable[[int, tuple], float],
    max_m: Optional[int] = None,
) -> PunishmentSpec:
    """Find the largest m (up to ``max_m``) at which the punishment holds."""
    limit = max_m if max_m is not None else game.n - 1
    best = 0
    margin = float("inf")
    for m in range(1, limit + 1):
        report = check_punishment_strategy(game, punishment, m, equilibrium_payoff)
        if not report.holds:
            break
        best = m
        if report.margin is not None:
            margin = min(margin, report.margin)
    return PunishmentSpec(profile=punishment, max_m=best, margin=margin)
