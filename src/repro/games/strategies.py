"""Strategies and strategy profiles in the underlying Bayesian game.

A strategy for player ``i`` maps ``i``'s type to a distribution over ``i``'s
actions. The profile object computes product distributions over action
profiles, which is all the exact solution-concept checkers need.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence

from repro.errors import StrategyError


class Strategy:
    """Base class: a map from own type to a distribution over actions."""

    def distribution(self, own_type: Any) -> dict[Any, float]:
        raise NotImplementedError

    def sample(self, own_type: Any, rng) -> Any:
        dist = self.distribution(own_type)
        roll = rng.random()
        acc = 0.0
        for action, prob in dist.items():
            acc += prob
            if roll <= acc:
                return action
        return list(dist)[-1]


class PureStrategy(Strategy):
    """Deterministic strategy: ``fn(own_type) -> action``."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    @staticmethod
    def constant_map(mapping: Mapping[Any, Any]) -> "PureStrategy":
        return PureStrategy(lambda t: mapping[t])

    def action(self, own_type: Any) -> Any:
        return self.fn(own_type)

    def distribution(self, own_type: Any) -> dict[Any, float]:
        return {self.fn(own_type): 1.0}


class ConstantStrategy(PureStrategy):
    """Always play the same action regardless of type."""

    def __init__(self, action: Any) -> None:
        super().__init__(lambda _t: action)
        self.fixed_action = action

    def __repr__(self) -> str:
        return f"ConstantStrategy({self.fixed_action!r})"


class MixedStrategy(Strategy):
    """Randomized strategy: ``fn(own_type) -> dict[action, prob]``."""

    def __init__(self, fn: Callable[[Any], dict[Any, float]]) -> None:
        self.fn = fn

    def distribution(self, own_type: Any) -> dict[Any, float]:
        dist = self.fn(own_type)
        total = sum(dist.values())
        if abs(total - 1.0) > 1e-9:
            raise StrategyError(f"strategy distribution sums to {total}")
        return dist


class UniformStrategy(MixedStrategy):
    """Uniform over a fixed action set (a common punishment building block)."""

    def __init__(self, actions: Sequence[Any]) -> None:
        actions = list(actions)
        prob = 1.0 / len(actions)
        super().__init__(lambda _t: {a: prob for a in actions})
        self.actions = actions


class StrategyProfile:
    """A tuple of strategies, one per player."""

    def __init__(self, strategies: Sequence[Strategy]) -> None:
        self.strategies = list(strategies)

    @property
    def n(self) -> int:
        return len(self.strategies)

    def __getitem__(self, i: int) -> Strategy:
        return self.strategies[i]

    def __iter__(self):
        return iter(self.strategies)

    def replace(self, assignments: Mapping[int, Strategy]) -> "StrategyProfile":
        """The profile (σ_-K, τ_K): players in ``assignments`` switch."""
        new = list(self.strategies)
        for i, strategy in assignments.items():
            new[i] = strategy
        return StrategyProfile(new)

    def action_distribution(self, types: Sequence[Any]) -> dict[tuple, float]:
        """Joint distribution over action profiles given a type profile.

        Independent across players (deviating coalitions that correlate are
        modelled as a single joint deviation object — see
        :class:`JointDeviation`).
        """
        per_player = [
            strategy.distribution(types[i])
            for i, strategy in enumerate(self.strategies)
        ]
        result: dict[tuple, float] = {}
        for combo in itertools.product(*(d.items() for d in per_player)):
            actions = tuple(a for a, _ in combo)
            prob = 1.0
            for _, p in combo:
                prob *= p
            if prob > 0:
                result[actions] = result.get(actions, 0.0) + prob
        return result


class JointDeviation:
    """A correlated deviation for a coalition K.

    Maps the coalition's joint type profile x_K to a joint distribution over
    the coalition's action tuples. Coalition members share type information
    (Definition 3.1's "even if they share their type information") and may
    correlate their randomness — both are captured here.
    """

    def __init__(
        self,
        coalition: Sequence[int],
        fn: Callable[[tuple], dict[tuple, float]],
    ) -> None:
        self.coalition = tuple(coalition)
        self.fn = fn

    @staticmethod
    def pure(coalition: Sequence[int], mapping: Mapping[tuple, tuple]) -> "JointDeviation":
        return JointDeviation(coalition, lambda x_k: {mapping[tuple(x_k)]: 1.0})

    def distribution(self, x_k: tuple) -> dict[tuple, float]:
        return self.fn(tuple(x_k))


def joint_action_distribution(
    profile: StrategyProfile,
    deviations: Sequence[JointDeviation],
    types: Sequence[Any],
) -> dict[tuple, float]:
    """Joint distribution over action profiles with coalition deviations.

    Coalition members' actions come from their joint deviation; everyone
    else plays their profile strategy independently.
    """
    deviating = {}
    for deviation in deviations:
        for i in deviation.coalition:
            if i in deviating:
                raise StrategyError(f"player {i} in two deviations")
            deviating[i] = deviation

    coalition_dists = []
    for deviation in deviations:
        x_k = tuple(types[i] for i in deviation.coalition)
        coalition_dists.append(
            (deviation.coalition, deviation.distribution(x_k))
        )
    loyal = [i for i in range(profile.n) if i not in deviating]
    loyal_dists = [
        (i, profile[i].distribution(types[i])) for i in loyal
    ]

    result: dict[tuple, float] = {}
    coalition_choices = [list(dist.items()) for _, dist in coalition_dists]
    loyal_choices = [list(dist.items()) for _, dist in loyal_dists]
    for coalition_combo in itertools.product(*coalition_choices):
        base_prob = 1.0
        assignment: dict[int, Any] = {}
        for (members, _), (actions, prob) in zip(coalition_dists, coalition_combo):
            base_prob *= prob
            for member, action in zip(members, actions):
                assignment[member] = action
        if base_prob == 0:
            continue
        for loyal_combo in itertools.product(*loyal_choices):
            prob = base_prob
            full = dict(assignment)
            for (i, _), (action, p) in zip(loyal_dists, loyal_combo):
                prob *= p
                full[i] = action
            if prob == 0:
                continue
            ordered = tuple(full[i] for i in range(profile.n))
            result[ordered] = result.get(ordered, 0.0) + prob
    return result
