"""Outcome maps, expected utilities, and the paper's distance notion.

An *outcome map* is the function T -> Δ(A) induced by a strategy profile
(plus, in extension games, an environment strategy). Implementation and
ε-implementation (Section 2) compare outcome maps: the distance between two
distributions is the L1 distance Σ|π(s) − π'(s)| and is lifted to outcome
maps by taking the max over type profiles.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.errors import GameError
from repro.games.bayesian import BayesianGame, TypeProfile
from repro.games.strategies import (
    JointDeviation,
    StrategyProfile,
    joint_action_distribution,
)

OutcomeMap = dict
"""type profile -> {action profile -> probability}"""


def outcome_map(
    game: BayesianGame,
    profile: StrategyProfile,
    deviations: Sequence[JointDeviation] = (),
) -> OutcomeMap:
    """The exact T -> Δ(A) map induced by ``profile`` (with deviations)."""
    result: OutcomeMap = {}
    for types in game.type_space.profiles():
        if deviations:
            result[types] = joint_action_distribution(profile, deviations, types)
        else:
            result[types] = profile.action_distribution(types)
    return result


def statistical_distance(pi: Mapping, pi_prime: Mapping) -> float:
    """The paper's dist(π, π') = Σ_s |π(s) − π'(s)| (L1, not halved)."""
    keys = sorted(set(pi) | set(pi_prime), key=repr)
    return sum(abs(pi.get(k, 0.0) - pi_prime.get(k, 0.0)) for k in keys)


def outcome_map_distance(a: OutcomeMap, b: OutcomeMap) -> float:
    """max over type profiles of the L1 distance between action dists."""
    keys = set(a) | set(b)
    worst = 0.0
    for key in keys:
        worst = max(worst, statistical_distance(a.get(key, {}), b.get(key, {})))
    return worst


def expected_utilities(
    game: BayesianGame,
    profile: StrategyProfile,
    deviations: Sequence[JointDeviation] = (),
) -> tuple[float, ...]:
    """Ex-ante expected utility vector under the (possibly deviated) profile."""
    totals = [0.0] * game.n
    for types, type_prob in game.type_space.support:
        if deviations:
            action_dist = joint_action_distribution(profile, deviations, types)
        else:
            action_dist = profile.action_distribution(types)
        for actions, action_prob in action_dist.items():
            payoff = game.utility(types, actions)
            weight = type_prob * action_prob
            for i in range(game.n):
                totals[i] += weight * payoff[i]
    return tuple(totals)


def conditional_expected_utility(
    game: BayesianGame,
    profile: StrategyProfile,
    player: int,
    coalition: Sequence[int],
    x_k: tuple,
    deviations: Sequence[JointDeviation] = (),
) -> float:
    """u_i(Γ, σ, x_K): expected utility conditioned on coalition types.

    This is the quantity all the paper's solution concepts compare
    (Definitions 3.1–3.6 all quantify over x_K and condition on T(x_K)).
    """
    total = 0.0
    for types, cond_prob in game.type_space.conditional(coalition, x_k):
        if deviations:
            action_dist = joint_action_distribution(profile, deviations, types)
        else:
            action_dist = profile.action_distribution(types)
        for actions, action_prob in action_dist.items():
            total += cond_prob * action_prob * game.utility_of(player, types, actions)
    return total


def empirical_outcome_map(
    game: BayesianGame,
    samples: Mapping[TypeProfile, Sequence[tuple]],
) -> OutcomeMap:
    """Estimate an outcome map from sampled action profiles per type profile.

    Used by the asynchronous layers, where outcome distributions come from
    simulation runs rather than closed-form products.
    """
    result: OutcomeMap = {}
    for types, action_list in samples.items():
        if not action_list:
            raise GameError(f"no samples for type profile {types!r}")
        dist: dict[tuple, float] = {}
        weight = 1.0 / len(action_list)
        for actions in action_list:
            key = tuple(actions)
            dist[key] = dist.get(key, 0.0) + weight
        result[types] = dist
    return result


def empirical_utilities(
    game: BayesianGame,
    samples: Mapping[TypeProfile, Sequence[tuple]],
    type_weights: Optional[Mapping[TypeProfile, float]] = None,
) -> tuple[float, ...]:
    """Expected utility vector from sampled outcomes.

    ``type_weights`` defaults to the game's type distribution restricted to
    the sampled profiles (renormalised).
    """
    if type_weights is None:
        weights = {
            types: game.type_space.probability(types) for types in samples
        }
    else:
        weights = dict(type_weights)
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise GameError("sampled type profiles have zero total probability")
    totals = [0.0] * game.n
    for types, action_list in samples.items():
        w = weights.get(types, 0.0) / total_weight
        if w == 0 or not action_list:
            continue
        per = w / len(action_list)
        for actions in action_list:
            payoff = game.utility(tuple(types), tuple(actions))
            for i in range(game.n):
                totals[i] += per * payoff[i]
    return tuple(totals)
