"""Concrete games used throughout tests, examples, and benchmarks.

Each entry is a :class:`GameSpec` bundling the underlying Bayesian game with
the *ideal mediator function* (what the trusted mediator computes from
reported types), encodings for the arithmetic-circuit path, a punishment
profile when one exists, and default moves.

Every game here is *data*: a ``<name>_def`` function builds the
declarative :class:`~repro.games.dsl.GameDef` (payoff expressions or
tables, a named mediator rule, punishment and default-move descriptions)
and the public ``<name>_game`` function compiles it. Golden tests pin the
compiled payoffs and per-seed mediator draws byte-identically to the
pre-DSL hand-written implementations, and every spec's ``definition``
round-trips through JSON.

Included games:

* :func:`section64_game` — the paper's Section 6.4 counterexample: the
  {0,1,⊥} game whose naive punishment-based implementation *fails* because
  the mediator leaks ``a + b·i``. The spec carries both the leaky and the
  minimal mediator so experiments can show the failure and the fix.
* :func:`consensus_game` — players are paid for matching the majority
  action; the mediator breaks symmetry with a common random bit. The
  workhorse (k,t)-robust example.
* :func:`byzantine_agreement_game` — consensus with type-dependent
  recommendation (majority of reported input bits): the paper's motivating
  example from the introduction.
* :func:`shamir_secret_game` — rational secret reconstruction where types
  are Shamir shares; reconstructing requires cooperation, misreports are
  error-corrected. Exercises the exclusivity-bonus attack surface.
* :func:`chicken_game` — the classic 2-player correlated-equilibrium
  example; the comparison workload for the Even–Goldreich–Lempel baseline.
* :func:`free_rider_game` — the introduction's Gnutella-style motivation:
  a mediator rotates the duty to share (k=1, t=0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import GameError
from repro.games.dsl import (
    BOT,
    GameDef,
    decoding_pairs,
    encoding_pairs,
    shared_actions,
)
from repro.games.strategies import StrategyProfile


@dataclass
class GameSpec:
    """A game plus everything the mediator/cheap-talk layers need."""

    name: str
    game: Any
    mediator_fn: Callable
    """(reported_type_profile, rng) -> recommended action profile."""

    type_encoding: dict = field(default_factory=dict)
    """type value -> small int, for the arithmetic-circuit path."""

    action_decoding: dict = field(default_factory=dict)
    """small int -> action value, for decoding circuit outputs."""

    mediator_dist: Optional[Callable] = None
    """Exact distribution: reports -> {recommendation profile: prob}.

    Must agree with ``mediator_fn`` (tests enforce this); used by the exact
    ideal-mediator equilibrium checkers.
    """

    punishment: Optional[StrategyProfile] = None
    punishment_strength: int = 0
    default_moves: Optional[Callable[[int, Any], Any]] = None
    """(player, type) -> default move (the default-move approach)."""

    notes: str = ""

    definition: Optional[GameDef] = None
    """The declarative source this spec was compiled from, when there is
    one — ``repro games show --json`` prints it and the DSL round-trip
    tests re-compile it."""

    def encode_type(self, value: Any) -> int:
        if not self.type_encoding:
            return int(value)
        return self.type_encoding[value]

    def decode_action(self, value: int) -> Any:
        if not self.action_decoding:
            return value
        return self.action_decoding[value]


# ---------------------------------------------------------------------------
# Section 6.4 counterexample
# ---------------------------------------------------------------------------

def section64_def(n: int, k: int = 1) -> GameDef:
    """The Section 6.4 game as declarative data (see :func:`section64_game`)."""
    if n <= 3 * k:
        raise GameError("section 6.4 game requires n > 3k")
    return GameDef(
        name=f"section64(n={n},k={k})",
        n=n,
        actions=shared_actions(n, (0, 1, BOT)),
        types={"kind": "single", "profile": (0,) * n},
        payoff={
            "kind": "expr",
            "params": {"k": k},
            "where": {"bots": "count(bot)"},
            "expr": (
                "1.1 if bots >= k + 1 else "
                "(1.0 if count(1) == 0 else "
                "(2.0 if count(0) == 0 else 0.0))"
            ),
        },
        mediator={"rule": "common-coin", "params": {"values": (0, 1)}},
        punishment={"kind": "constant", "action": BOT},
        punishment_strength=k,
        default_move={"kind": "constant", "action": BOT},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs((0, 1, BOT)),
        notes="Paper Section 6.4 counterexample game.",
    )


def section64_game(n: int, k: int = 1) -> GameSpec:
    """The Section 6.4 game: A = {0, 1, ⊥}, n > 3k.

    * ≥ k+1 players play ⊥  → everyone gets 1.1;
    * ≤ k ⊥ and the rest all 0 → everyone gets 1;
    * ≤ k ⊥ and the rest all 1 → everyone gets 2;
    * otherwise → 0.

    The mediator draws b uniform and recommends it to everyone; expected
    equilibrium payoff 1.5. All-⊥ is a k-punishment (payoff 1.1 < 1.5), but
    the *leaky* mediator of the paper additionally sends ``a + b·i mod 2``
    first, letting a coalition {i, j} with i − j odd recover b and defect to
    the punishment exactly when b = 0 (payoff 1.1 > 1). The spec's
    ``mediator_fn`` is the minimal (non-leaky) mediator; the leaky message
    schedule lives in ``repro.mediator.minimal.leaky_section64_mediator``.
    """
    return section64_def(n, k).compile()


# ---------------------------------------------------------------------------
# Consensus / coordination
# ---------------------------------------------------------------------------

_MAJORITY_PAYOFF = {
    # u_i = 1 iff i's action is a plurality action (binary action set).
    "kind": "expr",
    "where": {"cmax": "max(count(0), count(1))"},
    "expr": "1.0 if count(me) == cmax else 0.0",
}


def consensus_def(n: int) -> GameDef:
    """The consensus game as declarative data (see :func:`consensus_game`)."""
    return GameDef(
        name=f"consensus(n={n})",
        n=n,
        actions=shared_actions(n, (0, 1)),
        types={"kind": "single", "profile": (0,) * n},
        payoff=_MAJORITY_PAYOFF,
        mediator={"rule": "common-coin", "params": {"values": (0, 1)}},
        punishment={"kind": "uniform", "actions": (0, 1)},
        punishment_strength=max(1, n // 3),
        default_move={"kind": "constant", "action": 0},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs((0, 1)),
        notes="Correlated coordination on a mediator coin.",
    )


def consensus_game(n: int) -> GameSpec:
    """Majority-matching game: u_i = 1 iff i's action is a plurality action.

    With the mediator recommending a common random bit, everyone coordinates
    and earns 1. Any coalition playing against an honest majority earns 0,
    and no set of t < n/2 players can dislodge the honest majority — giving
    (k,t)-robustness for k + t < n/2. Uniform-random play is a punishment
    profile (expected payoff strictly below 1 for any small coalition).
    """
    return consensus_def(n).compile()


def byzantine_agreement_def(n: int) -> GameDef:
    """Byzantine agreement as declarative data."""
    return GameDef(
        name=f"byz-agreement(n={n})",
        n=n,
        actions=shared_actions(n, (0, 1)),
        types={"kind": "independent-uniform", "values": ((0, 1),) * n},
        payoff=_MAJORITY_PAYOFF,
        mediator={"rule": "majority", "params": {"high": 1, "low": 0}},
        punishment={"kind": "uniform", "actions": (0, 1)},
        punishment_strength=max(1, n // 3),
        default_move={"kind": "own-type"},
        type_encoding=encoding_pairs((0, 1)),
        action_decoding=decoding_pairs((0, 1)),
        notes="Byzantine agreement with a mediator (paper introduction).",
    )


def byzantine_agreement_game(n: int) -> GameSpec:
    """Consensus game with input bits: the introduction's mediator example.

    Types are independent uniform bits; the mediator recommends the majority
    of reported bits (ties broken toward 0), and players are paid for
    matching the plurality action, exactly as in :func:`consensus_game`.
    Agreement on *any* common value yields payoff 1, so misreports move the
    agreed value but cannot hurt outsiders — keeping t-immunity — while the
    protocol-level tests separately check validity (majority of honest
    reports wins when honest reports are unanimous).
    """
    return byzantine_agreement_def(n).compile()


# ---------------------------------------------------------------------------
# Rational secret reconstruction (Shamir types)
# ---------------------------------------------------------------------------

def shamir_secret_def(
    n: int = 5, modulus: int = 5, degree: int = 2, exclusivity_bonus: float = 0.5
) -> GameDef:
    """Rational secret reconstruction as declarative data."""
    return GameDef(
        name=f"shamir-secret(n={n},q={modulus},d={degree})",
        n=n,
        actions=shared_actions(n, tuple(range(modulus))),
        types={"kind": "shamir-shares", "modulus": modulus, "degree": degree},
        payoff={
            "kind": "expr",
            "params": {"q": modulus, "d": degree, "bonus": exclusivity_bonus},
            "where": {"secret": "shamir_secret(types, q, d)"},
            "expr": (
                "0.0 if me != secret else "
                "(1.0 + (bonus if any(actions[j] != secret for j in others) "
                "else 0.0))"
            ),
        },
        mediator={
            "rule": "shamir-decode",
            "params": {"modulus": modulus, "degree": degree, "fallback": 0},
        },
        punishment=None,
        default_move={"kind": "constant", "action": 0},
        type_encoding=encoding_pairs(tuple(range(modulus))),
        action_decoding=decoding_pairs(tuple(range(modulus))),
        notes="Rational secret reconstruction; exclusivity bonus attack surface.",
    )


def shamir_secret_game(
    n: int = 5, modulus: int = 5, degree: int = 2, exclusivity_bonus: float = 0.5
) -> GameSpec:
    """Rational secret reconstruction with Shamir-share types.

    A degree-``degree`` polynomial over Z_modulus is drawn uniformly; player
    i's type is its evaluation at i+1 and the secret is the constant term.
    Players guess the secret: a correct guess pays 1, plus
    ``exclusivity_bonus`` if at least one other player guessed wrong. The
    mediator error-corrects the reported shares and recommends the secret.

    No coalition of ≤ ``degree`` players learns anything alone, so the only
    way to the payoff is through the mediator (or cheap talk) — the classic
    rational-secret-sharing setting.
    """
    return shamir_secret_def(n, modulus, degree, exclusivity_bonus).compile()


# ---------------------------------------------------------------------------
# Chicken (2-player correlated equilibrium; EGL baseline workload)
# ---------------------------------------------------------------------------

CHICKEN_PAYOFFS = {
    ("D", "D"): (0.0, 0.0),
    ("D", "C"): (7.0, 2.0),
    ("C", "D"): (2.0, 7.0),
    ("C", "C"): (6.0, 6.0),
}


def chicken_def() -> GameDef:
    """Aumann's chicken as declarative data."""
    third = 1.0 / 3.0
    return GameDef(
        name="chicken",
        n=2,
        actions=shared_actions(2, ("D", "C")),
        types={"kind": "single", "profile": (0, 0)},
        payoff={
            "kind": "table",
            "cells": tuple(
                ((0, 0), actions, payoffs)
                for actions, payoffs in CHICKEN_PAYOFFS.items()
            ),
        },
        mediator={
            "rule": "table",
            "params": {
                "cells": (
                    (("C", "C"), third),
                    (("C", "D"), third),
                    (("D", "C"), third),
                ),
            },
        },
        punishment={"kind": "constant", "action": "D"},
        punishment_strength=1,
        default_move={"kind": "constant", "action": "D"},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs(("D", "C")),
        notes="Correlated equilibrium exceeding the Nash hull; EGL workload.",
    )


def chicken_game() -> GameSpec:
    """Aumann's game of chicken with the classic correlated equilibrium.

    The mediator draws one of (C,C), (C,D), (D,C) uniformly and privately
    recommends each player its component. Obedience is an equilibrium and
    the expected payoff (5.0 each) beats the mixed Nash.
    """
    return chicken_def().compile()


# ---------------------------------------------------------------------------
# Free riding (introduction motivation)
# ---------------------------------------------------------------------------

def free_rider_def(
    n: int = 4, sharers_needed: int = 2, benefit: float = 2.0, cost: float = 1.0
) -> GameDef:
    """The Gnutella-style sharing game as declarative data."""
    if sharers_needed < 1 or sharers_needed > n:
        raise GameError("sharers_needed out of range")
    return GameDef(
        name=f"free-rider(n={n},m={sharers_needed})",
        n=n,
        actions=shared_actions(n, ("share", "ride")),
        types={"kind": "single", "profile": (0,) * n},
        payoff={
            "kind": "expr",
            "params": {"m": sharers_needed, "benefit": benefit, "cost": cost},
            "where": {"sharing": "count('share')"},
            "expr": (
                "(benefit if sharing >= m else 0.0) - "
                "(cost if me == 'share' else 0.0)"
            ),
        },
        mediator={
            "rule": "rotate-duty",
            "params": {"count": sharers_needed, "active": "share",
                       "idle": "ride"},
        },
        punishment={"kind": "constant", "action": "ride"},
        punishment_strength=1,
        default_move={"kind": "constant", "action": "ride"},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs(("share", "ride")),
        notes="Mediator rotates sharing duty (Kazaa/Gnutella motivation).",
    )


def free_rider_game(
    n: int = 4, sharers_needed: int = 2, benefit: float = 2.0, cost: float = 1.0
) -> GameSpec:
    """Gnutella-style sharing game (paper introduction).

    Everyone receives ``benefit`` if at least ``sharers_needed`` players
    share; sharing costs ``cost``. The mediator rotates duty: it draws a
    uniformly random set of exactly ``sharers_needed`` players and
    recommends "share" to them. Parameters are chosen pivotal
    (``benefit > cost``) so obedience is a Nash equilibrium (k=1, t=0).
    """
    return free_rider_def(n, sharers_needed, benefit, cost).compile()


ALL_SPECS: dict[str, Callable[..., GameSpec]] = {
    "section64": section64_game,
    "consensus": consensus_game,
    "byzantine-agreement": byzantine_agreement_game,
    "shamir-secret": shamir_secret_game,
    "chicken": chicken_game,
    "free-rider": free_rider_game,
}
