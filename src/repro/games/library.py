"""Concrete games used throughout tests, examples, and benchmarks.

Each entry is a :class:`GameSpec` bundling the underlying Bayesian game with
the *ideal mediator function* (what the trusted mediator computes from
reported types), encodings for the arithmetic-circuit path, a punishment
profile when one exists, and default moves.

Included games:

* :func:`section64_game` — the paper's Section 6.4 counterexample: the
  {0,1,⊥} game whose naive punishment-based implementation *fails* because
  the mediator leaks ``a + b·i``. The spec carries both the leaky and the
  minimal mediator so experiments can show the failure and the fix.
* :func:`consensus_game` — players are paid for matching the majority
  action; the mediator breaks symmetry with a common random bit. The
  workhorse (k,t)-robust example.
* :func:`byzantine_agreement_game` — consensus with type-dependent
  recommendation (majority of reported input bits): the paper's motivating
  example from the introduction.
* :func:`shamir_secret_game` — rational secret reconstruction where types
  are Shamir shares; reconstructing requires cooperation, misreports are
  error-corrected. Exercises the exclusivity-bonus attack surface.
* :func:`chicken_game` — the classic 2-player correlated-equilibrium
  example; the comparison workload for the Even–Goldreich–Lempel baseline.
* :func:`free_rider_game` — the introduction's Gnutella-style motivation:
  a mediator rotates the duty to share (k=1, t=0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import GameError
from repro.games.bayesian import BayesianGame, TypeSpace
from repro.games.strategies import (
    ConstantStrategy,
    PureStrategy,
    StrategyProfile,
    UniformStrategy,
)

BOT = "⊥"
"""The opt-out action of the Section 6.4 game."""


@dataclass
class GameSpec:
    """A game plus everything the mediator/cheap-talk layers need."""

    name: str
    game: BayesianGame
    mediator_fn: Callable
    """(reported_type_profile, rng) -> recommended action profile."""

    type_encoding: dict = field(default_factory=dict)
    """type value -> small int, for the arithmetic-circuit path."""

    action_decoding: dict = field(default_factory=dict)
    """small int -> action value, for decoding circuit outputs."""

    mediator_dist: Optional[Callable] = None
    """Exact distribution: reports -> {recommendation profile: prob}.

    Must agree with ``mediator_fn`` (tests enforce this); used by the exact
    ideal-mediator equilibrium checkers.
    """

    punishment: Optional[StrategyProfile] = None
    punishment_strength: int = 0
    default_moves: Optional[Callable[[int, Any], Any]] = None
    """(player, type) -> default move (the default-move approach)."""

    notes: str = ""

    def encode_type(self, value: Any) -> int:
        if not self.type_encoding:
            return int(value)
        return self.type_encoding[value]

    def decode_action(self, value: int) -> Any:
        if not self.action_decoding:
            return value
        return self.action_decoding[value]


# ---------------------------------------------------------------------------
# Section 6.4 counterexample
# ---------------------------------------------------------------------------

def section64_utility(k: int):
    def utility(types, actions):
        bots = sum(1 for a in actions if a == BOT)
        if bots >= k + 1:
            value = 1.1
        elif all(a in (0, BOT) for a in actions):
            value = 1.0
        elif all(a in (1, BOT) for a in actions):
            value = 2.0
        else:
            value = 0.0
        return [value] * len(actions)

    return utility


def section64_game(n: int, k: int = 1) -> GameSpec:
    """The Section 6.4 game: A = {0, 1, ⊥}, n > 3k.

    * ≥ k+1 players play ⊥  → everyone gets 1.1;
    * ≤ k ⊥ and the rest all 0 → everyone gets 1;
    * ≤ k ⊥ and the rest all 1 → everyone gets 2;
    * otherwise → 0.

    The mediator draws b uniform and recommends it to everyone; expected
    equilibrium payoff 1.5. All-⊥ is a k-punishment (payoff 1.1 < 1.5), but
    the *leaky* mediator of the paper additionally sends ``a + b·i mod 2``
    first, letting a coalition {i, j} with i − j odd recover b and defect to
    the punishment exactly when b = 0 (payoff 1.1 > 1). The spec's
    ``mediator_fn`` is the minimal (non-leaky) mediator; the leaky message
    schedule lives in ``repro.mediator.minimal.leaky_section64_mediator``.
    """
    if n <= 3 * k:
        raise GameError("section 6.4 game requires n > 3k")
    game = BayesianGame(
        n=n,
        action_sets=[[0, 1, BOT]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=section64_utility(k),
        name=f"section64(n={n},k={k})",
    )

    def mediator_fn(reports, rng):
        b = rng.randrange(2)
        return tuple(b for _ in range(n))

    def mediator_dist(reports):
        return {tuple(0 for _ in range(n)): 0.5, tuple(1 for _ in range(n)): 0.5}

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: 0, 1: 1, 2: BOT},
        punishment=StrategyProfile([ConstantStrategy(BOT)] * n),
        punishment_strength=k,
        default_moves=lambda i, t: BOT,
        notes="Paper Section 6.4 counterexample game.",
    )


# ---------------------------------------------------------------------------
# Consensus / coordination
# ---------------------------------------------------------------------------

def _majority_payoff(n):
    def utility(types, actions):
        counts: dict[Any, int] = {}
        for a in actions:
            counts[a] = counts.get(a, 0) + 1
        best = max(counts.values())
        winners = {a for a, c in counts.items() if c == best}
        return [1.0 if actions[i] in winners else 0.0 for i in range(n)]

    return utility


def consensus_game(n: int) -> GameSpec:
    """Majority-matching game: u_i = 1 iff i's action is a plurality action.

    With the mediator recommending a common random bit, everyone coordinates
    and earns 1. Any coalition playing against an honest majority earns 0,
    and no set of t < n/2 players can dislodge the honest majority — giving
    (k,t)-robustness for k + t < n/2. Uniform-random play is a punishment
    profile (expected payoff strictly below 1 for any small coalition).
    """
    game = BayesianGame(
        n=n,
        action_sets=[[0, 1]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=_majority_payoff(n),
        name=f"consensus(n={n})",
    )

    def mediator_fn(reports, rng):
        b = rng.randrange(2)
        return tuple(b for _ in range(n))

    def mediator_dist(reports):
        return {tuple(0 for _ in range(n)): 0.5, tuple(1 for _ in range(n)): 0.5}

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: 0, 1: 1},
        punishment=StrategyProfile([UniformStrategy([0, 1])] * n),
        punishment_strength=max(1, n // 3),
        default_moves=lambda i, t: 0,
        notes="Correlated coordination on a mediator coin.",
    )


def byzantine_agreement_game(n: int) -> GameSpec:
    """Consensus game with input bits: the introduction's mediator example.

    Types are independent uniform bits; the mediator recommends the majority
    of reported bits (ties broken toward 0), and players are paid for
    matching the plurality action, exactly as in :func:`consensus_game`.
    Agreement on *any* common value yields payoff 1, so misreports move the
    agreed value but cannot hurt outsiders — keeping t-immunity — while the
    protocol-level tests separately check validity (majority of honest
    reports wins when honest reports are unanimous).
    """
    game = BayesianGame(
        n=n,
        action_sets=[[0, 1]] * n,
        type_space=TypeSpace.independent_uniform([[0, 1]] * n),
        utility=_majority_payoff(n),
        name=f"byz-agreement(n={n})",
    )

    def mediator_fn(reports, rng):
        ones = sum(reports)
        b = 1 if ones * 2 > len(reports) else 0
        return tuple(b for _ in range(n))

    def mediator_dist(reports):
        ones = sum(reports)
        b = 1 if ones * 2 > len(reports) else 0
        return {tuple(b for _ in range(n)): 1.0}

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0, 1: 1},
        action_decoding={0: 0, 1: 1},
        punishment=StrategyProfile([UniformStrategy([0, 1])] * n),
        punishment_strength=max(1, n // 3),
        default_moves=lambda i, t: t,
        notes="Byzantine agreement with a mediator (paper introduction).",
    )


# ---------------------------------------------------------------------------
# Rational secret reconstruction (Shamir types)
# ---------------------------------------------------------------------------

def shamir_secret_game(
    n: int = 5, modulus: int = 5, degree: int = 2, exclusivity_bonus: float = 0.5
) -> GameSpec:
    """Rational secret reconstruction with Shamir-share types.

    A degree-``degree`` polynomial over Z_modulus is drawn uniformly; player
    i's type is its evaluation at i+1 and the secret is the constant term.
    Players guess the secret: a correct guess pays 1, plus
    ``exclusivity_bonus`` if at least one other player guessed wrong. The
    mediator error-corrects the reported shares and recommends the secret.

    No coalition of ≤ ``degree`` players learns anything alone, so the only
    way to the payoff is through the mediator (or cheap talk) — the classic
    rational-secret-sharing setting.
    """
    import itertools

    xs = list(range(1, n + 1))
    profiles = []
    for coeffs in itertools.product(range(modulus), repeat=degree + 1):
        shares = tuple(
            sum(c * pow(x, j, modulus) for j, c in enumerate(coeffs)) % modulus
            for x in xs
        )
        profiles.append(shares)
    type_space = TypeSpace.uniform(profiles)

    def secret_of(types) -> int:
        from repro.field import GF, lagrange_interpolate

        f = GF(modulus)
        points = [(x, s) for x, s in zip(xs[: degree + 1], types[: degree + 1])]
        return int(lagrange_interpolate(f, points)(0))

    def utility(types, actions):
        secret = secret_of(types)
        correct = [a == secret for a in actions]
        payoffs = []
        for i in range(n):
            if not correct[i]:
                payoffs.append(0.0)
                continue
            others_wrong = any(not correct[j] for j in range(n) if j != i)
            payoffs.append(1.0 + (exclusivity_bonus if others_wrong else 0.0))
        return payoffs

    game = BayesianGame(
        n=n,
        action_sets=[list(range(modulus))] * n,
        type_space=type_space,
        utility=utility,
        name=f"shamir-secret(n={n},q={modulus},d={degree})",
    )

    def mediator_fn(reports, rng):
        from repro.errors import DecodingError
        from repro.field import GF, berlekamp_welch

        f = GF(modulus)
        max_errors = (n - degree - 1) // 2
        try:
            poly = berlekamp_welch(
                f,
                list(zip(xs, reports)),
                degree=degree,
                max_errors=max_errors,
            )
            secret = int(poly(0))
        except DecodingError:
            secret = 0  # detected cheating: fall back to a fixed value
        return tuple(secret for _ in range(n))

    def mediator_dist(reports):
        import random as _random

        return {mediator_fn(reports, _random.Random(0)): 1.0}

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={v: v for v in range(modulus)},
        action_decoding={v: v for v in range(modulus)},
        punishment=None,
        default_moves=lambda i, t: 0,
        notes="Rational secret reconstruction; exclusivity bonus attack surface.",
    )


# ---------------------------------------------------------------------------
# Chicken (2-player correlated equilibrium; EGL baseline workload)
# ---------------------------------------------------------------------------

CHICKEN_PAYOFFS = {
    ("D", "D"): (0.0, 0.0),
    ("D", "C"): (7.0, 2.0),
    ("C", "D"): (2.0, 7.0),
    ("C", "C"): (6.0, 6.0),
}


def chicken_game() -> GameSpec:
    """Aumann's game of chicken with the classic correlated equilibrium.

    The mediator draws one of (C,C), (C,D), (D,C) uniformly and privately
    recommends each player its component. Obedience is an equilibrium and
    the expected payoff (5.0 each) beats the mixed Nash.
    """
    game = BayesianGame(
        n=2,
        action_sets=[["D", "C"], ["D", "C"]],
        type_space=TypeSpace.single([0, 0]),
        utility=lambda types, actions: CHICKEN_PAYOFFS[tuple(actions)],
        name="chicken",
    )

    cells = [("C", "C"), ("C", "D"), ("D", "C")]

    def mediator_fn(reports, rng):
        return cells[rng.randrange(3)]

    def mediator_dist(reports):
        return {cell: 1.0 / 3.0 for cell in cells}

    return GameSpec(
        name="chicken",
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: "D", 1: "C"},
        punishment=StrategyProfile([ConstantStrategy("D")] * 2),
        punishment_strength=1,
        default_moves=lambda i, t: "D",
        notes="Correlated equilibrium exceeding the Nash hull; EGL workload.",
    )


# ---------------------------------------------------------------------------
# Free riding (introduction motivation)
# ---------------------------------------------------------------------------

def free_rider_game(
    n: int = 4, sharers_needed: int = 2, benefit: float = 2.0, cost: float = 1.0
) -> GameSpec:
    """Gnutella-style sharing game (paper introduction).

    Everyone receives ``benefit`` if at least ``sharers_needed`` players
    share; sharing costs ``cost``. The mediator rotates duty: it draws a
    uniformly random set of exactly ``sharers_needed`` players and
    recommends "share" to them. Parameters are chosen pivotal
    (``benefit > cost``) so obedience is a Nash equilibrium (k=1, t=0).
    """
    if sharers_needed < 1 or sharers_needed > n:
        raise GameError("sharers_needed out of range")

    def utility(types, actions):
        sharing = sum(1 for a in actions if a == "share")
        base = benefit if sharing >= sharers_needed else 0.0
        return [base - (cost if actions[i] == "share" else 0.0) for i in range(n)]

    game = BayesianGame(
        n=n,
        action_sets=[["share", "ride"]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=utility,
        name=f"free-rider(n={n},m={sharers_needed})",
    )

    import itertools

    subsets = list(itertools.combinations(range(n), sharers_needed))

    def mediator_fn(reports, rng):
        chosen = subsets[rng.randrange(len(subsets))]
        return tuple("share" if i in chosen else "ride" for i in range(n))

    def mediator_dist(reports):
        prob = 1.0 / len(subsets)
        return {
            tuple("share" if i in chosen else "ride" for i in range(n)): prob
            for chosen in subsets
        }

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: "share", 1: "ride"},
        punishment=StrategyProfile([ConstantStrategy("ride")] * n),
        punishment_strength=1,
        default_moves=lambda i, t: "ride",
        notes="Mediator rotates sharing duty (Kazaa/Gnutella motivation).",
    )


ALL_SPECS: dict[str, Callable[..., GameSpec]] = {
    "section64": section64_game,
    "consensus": consensus_game,
    "byzantine-agreement": byzantine_agreement_game,
    "shamir-secret": shamir_secret_game,
    "chicken": chicken_game,
    "free-rider": free_rider_game,
}
