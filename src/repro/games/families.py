"""Parameterized game families: ``consensus@n5``, ``ba@n7t2``, ``random@n4s123``.

A *family* is a named generator of :class:`~repro.games.dsl.GameDef`\\ s.
Family instances are addressed by JSON-safe strings — ``<family>@<params>``
where the params segment is a run of ``<letter><integer>`` pairs, parsed
the same way :func:`repro.sim.timing.timing_from_name` parses
``bounded-16@200`` — so scenario grids, audit specs, and the CLI can sweep
game size (or fuzz seeded random games) without any side channel: the name
alone rebuilds the identical game in every worker process.

Shipped families (defaults in brackets):

* ``consensus@n<players>`` — the workhorse coordination game;
* ``ba@n<players>t<strength>`` — Byzantine agreement; ``t`` sets the
  punishment strength bookkeeping [n//3];
* ``sec64@n<players>k<bound>`` — the Section 6.4 counterexample
  [k = (n-1)//3];
* ``free-rider@n<players>m<sharers>`` [m=2];
* ``volunteer@n<players>``;
* ``public-goods@n<players>m<threshold>`` [m = max(2, n//3), pivotal pot];
* ``minority@n<players>`` (n must be odd);
* ``shamir@n<players>q<modulus>d<degree>`` [q=5, d=2];
* ``random@n<players>s<seed>a<actions>m<types>`` — seeded random games
  [a=2, m=1]: uniform payoff tables, a welfare-guided random mediator,
  everything pure table data (see :func:`random_game_def`). These are the
  fuzz targets of ``repro audit fuzz`` — robustness search on games
  nobody hand-wrote.

New families register through :func:`register_family`; the generator gets
the parsed ``{letter: int}`` dict merged over its declared defaults.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Iterator, Optional

from repro.errors import GameError
from repro.games.dsl import GameDef, decoding_pairs, encoding_pairs, shared_actions
from repro.games.library import (
    byzantine_agreement_def,
    consensus_def,
    free_rider_def,
    section64_def,
    shamir_secret_def,
)
from repro.games.library_extra import (
    minority_def,
    public_goods_def,
    volunteer_def,
)

FamilyMaker = Callable[[dict], GameDef]

_FAMILIES: dict[str, tuple[dict, FamilyMaker]] = {}

_PARAMS_RE = re.compile(r"([a-z])(\d+)")


def register_family(
    name: str, defaults: dict, maker: FamilyMaker | None = None
):
    """Register a family generator; usable as a decorator.

    ``defaults`` maps single-letter parameter names to their default
    integer values; the maker receives the merged parameter dict.
    """

    def _register(fn: FamilyMaker) -> FamilyMaker:
        if name in _FAMILIES:
            raise GameError(f"game family {name!r} is already registered")
        for key in defaults:
            if len(key) != 1 or not key.isalpha():
                raise GameError(
                    f"family parameter names must be single letters, "
                    f"got {key!r}"
                )
        _FAMILIES[name] = (dict(defaults), fn)
        return fn

    if maker is not None:
        return _register(maker)
    return _register


def family_names() -> list[str]:
    return sorted(_FAMILIES)


def family_params(name: str) -> dict:
    """The declared parameter defaults of family ``name``."""
    try:
        defaults, _ = _FAMILIES[name]
    except KeyError:
        raise GameError(
            f"unknown game family {name!r}; known families: "
            f"{', '.join(family_names())}"
        ) from None
    return dict(defaults)


def iter_families() -> Iterator[tuple[str, dict]]:
    for name in family_names():
        yield name, family_params(name)


def is_family_name(name: str) -> bool:
    """True for ``family@params`` strings (the registry's dispatch test)."""
    return "@" in name


def parse_game_name(name: str) -> tuple[str, dict]:
    """Split ``family@params`` into the family and its ``{letter: int}`` dict.

    ``consensus@n5`` → ``("consensus", {"n": 5})``;
    ``random@n4s123`` → ``("random", {"n": 4, "s": 123})``. Raises
    :class:`~repro.errors.GameError` for malformed params or unknown
    families/parameters.
    """
    family, _, params_text = name.partition("@")
    defaults = family_params(family)  # raises for unknown families
    params = dict(defaults)
    consumed = _PARAMS_RE.sub("", params_text)
    if consumed or not params_text:
        raise GameError(
            f"bad game parameters {params_text!r} in {name!r} "
            f"(want e.g. {family}@"
            f"{''.join(f'{k}{v}' for k, v in defaults.items())})"
        )
    for letter, digits in _PARAMS_RE.findall(params_text):
        if letter not in defaults:
            raise GameError(
                f"unknown parameter {letter!r} for game family {family!r} "
                f"(takes: {', '.join(sorted(defaults))})"
            )
        params[letter] = int(digits)
    return family, params


def make_family_def(name: str, n: Optional[int] = None) -> GameDef:
    """Build the :class:`GameDef` for a ``family@params`` name.

    ``n`` is a fallback player count for families with an ``n`` parameter
    the name leaves unset — which cannot happen through
    :func:`parse_game_name` (defaults fill every slot) but keeps the
    registry's ``make_game(name, n)`` shape meaningful for plain family
    names without a params segment.
    """
    if "@" in name:
        family, params = parse_game_name(name)
    else:
        family = name
        params = family_params(family)
        if n is not None and "n" in params:
            params["n"] = n
    _, maker = _FAMILIES[family]
    return maker(params)


# ---------------------------------------------------------------------------
# Library games as families
# ---------------------------------------------------------------------------

register_family("consensus", {"n": 9}, lambda p: consensus_def(p["n"]))
register_family(
    "sec64",
    {"n": 7, "k": 0},
    lambda p: section64_def(
        p["n"], p["k"] if p["k"] else max(1, (p["n"] - 1) // 3)
    ),
)
register_family("volunteer", {"n": 5}, lambda p: volunteer_def(p["n"]))
register_family("minority", {"n": 5}, lambda p: minority_def(p["n"]))
register_family(
    "free-rider",
    {"n": 4, "m": 2},
    lambda p: free_rider_def(p["n"], p["m"]),
)
register_family(
    "shamir",
    {"n": 5, "q": 5, "d": 2},
    lambda p: shamir_secret_def(p["n"], p["q"], p["d"]),
)


@register_family("ba", {"n": 9, "t": 0})
def _ba_family(params: dict) -> GameDef:
    import dataclasses

    base = byzantine_agreement_def(params["n"])
    strength = params["t"] if params["t"] else max(1, params["n"] // 3)
    return dataclasses.replace(base, punishment_strength=strength)


@register_family("public-goods", {"n": 6, "m": 0})
def _public_goods_family(params: dict) -> GameDef:
    n = params["n"]
    threshold = params["m"] if params["m"] else max(2, n // 3)
    # Keep the pivotality invariant pot/n > cost for every swept size.
    return public_goods_def(n, threshold, pot=1.5 * n, cost=1.0)


# ---------------------------------------------------------------------------
# Seeded random games (the fuzz targets)
# ---------------------------------------------------------------------------

@register_family("random", {"n": 4, "s": 0, "a": 2, "m": 1})
def _random_family(params: dict) -> GameDef:
    return random_game_def(
        n=params["n"], seed=params["s"], actions=params["a"], types=params["m"]
    )


def random_game_def(
    n: int = 4, seed: int = 0, actions: int = 2, types: int = 1
) -> GameDef:
    """A seeded random Bayesian game as pure table data.

    Deterministic in ``(n, seed, actions, types)``: payoffs are uniform
    draws in [0, 1] (rounded to 3 decimals so the JSON form is exact),
    the type space is the single profile 0ⁿ (``types == 1``) or
    independent-uniform over ``{0..types-1}`` per player, and the mediator
    is a ``table`` rule recommending one of the two highest-welfare action
    profiles uniformly per reported type profile — random games whose
    honest baseline is still worth deviating against, which is what makes
    them useful fuzz targets for the audit engine.
    """
    import itertools

    if n < 1 or actions < 2 or types < 1:
        raise GameError("random game needs n >= 1, actions >= 2, types >= 1")
    rng = random.Random(f"random-game:n{n}a{actions}m{types}s{seed}")
    action_values = tuple(range(actions))
    if types == 1:
        type_profiles = [(0,) * n]
        types_def: dict = {"kind": "single", "profile": (0,) * n}
    else:
        values = tuple(range(types))
        type_profiles = list(itertools.product(*([values] * n)))
        types_def = {"kind": "independent-uniform", "values": (values,) * n}

    action_profiles = list(itertools.product(*([action_values] * n)))
    cells = []
    by_reports = []
    for tp in type_profiles:
        welfare: list[tuple[float, tuple]] = []
        for ap in action_profiles:
            payoffs = tuple(round(rng.random(), 3) for _ in range(n))
            cells.append((tp, ap, payoffs))
            welfare.append((sum(payoffs), ap))
        top = sorted(welfare, key=lambda w: (-w[0], w[1]))[:2]
        by_reports.append(
            (tp, tuple((ap, 1.0 / len(top)) for _, ap in top))
        )

    if types == 1:
        mediator = {"rule": "table", "params": {"cells": by_reports[0][1]}}
    else:
        mediator = {"rule": "table", "params": {"by_reports": tuple(by_reports)}}

    return GameDef(
        name=f"random(n={n},a={actions},m={types},s={seed})",
        n=n,
        actions=shared_actions(n, action_values),
        types=types_def,
        payoff={"kind": "table", "cells": tuple(cells)},
        mediator=mediator,
        punishment={"kind": "uniform", "actions": action_values},
        punishment_strength=1,
        default_move={"kind": "constant", "action": 0},
        type_encoding=encoding_pairs(tuple(range(types))),
        action_decoding=decoding_pairs(action_values),
        notes=f"Seeded random game (seed {seed}); audit-fuzz target.",
    )
