"""The central game registry shared by the CLI, examples, and experiments.

Historically every entry point (CLI, examples, benchmarks) carried its own
``GAMES`` dict mapping a short name to a ``lambda n: GameSpec`` maker. This
module is the single home for that mapping: games register themselves with
:func:`register_game` and every consumer resolves names through
:func:`make_game`.

A *maker* takes the requested player count ``n`` and returns a fully
configured :class:`~repro.games.library.GameSpec`. Makers are free to adjust
``n`` (some games pin their own player count — ``chicken`` is always
2-player) or derive secondary parameters from it (``section64`` picks the
largest legal ``k``).

Beyond the fixed registry names, :func:`make_game` resolves two further
JSON-safe name forms, both rebuildable from the name alone in any worker
process:

* ``family@params`` — parameterized game families
  (:mod:`repro.games.families`): ``consensus@n5``, ``ba@n7t2``,
  ``random@n4s123``;
* ``file:<path>`` — a :class:`~repro.games.dsl.GameDef` JSON file on
  disk, for user-defined games (see the README's "Defining your own
  game").
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import GameError
from repro.games.library import (
    byzantine_agreement_game,
    chicken_game,
    consensus_game,
    free_rider_game,
    section64_game,
    shamir_secret_game,
)
from repro.games.library import GameSpec
from repro.games.library_extra import (
    battle_of_sexes,
    minority_game,
    public_goods_game,
    volunteer_game,
)

FILE_GAME_PREFIX = "file:"
"""Name prefix resolving a game from a GameDef JSON file."""

GameMaker = Callable[[int], GameSpec]

GAME_REGISTRY: dict[str, GameMaker] = {}


def register_game(name: str, maker: GameMaker | None = None):
    """Register ``maker`` under ``name``; usable as a decorator.

    ``register_game("foo", fn)`` registers directly;
    ``@register_game("foo")`` decorates a maker function.
    """

    def _register(fn: GameMaker) -> GameMaker:
        if name in GAME_REGISTRY:
            raise GameError(f"game {name!r} is already registered")
        GAME_REGISTRY[name] = fn
        return fn

    if maker is not None:
        return _register(maker)
    return _register


def make_game(name: str, n: int) -> GameSpec:
    """Build the game ``name`` for ``n`` players.

    Resolution order: ``file:<path>`` GameDef JSON files, then exact
    registry names, then ``family@params`` instances. For family names
    the parameters in the name win over ``n`` (``consensus@n5`` is a
    5-player game whatever ``n`` says); ``n`` only fills a family's
    player count when the name carries no params segment.
    """
    if name.startswith(FILE_GAME_PREFIX):
        return load_game_file(name[len(FILE_GAME_PREFIX):])
    maker = GAME_REGISTRY.get(name)
    if maker is not None:
        return maker(n)

    from repro.games.families import (
        family_names,
        is_family_name,
        make_family_def,
    )

    if is_family_name(name) or name in family_names():
        return make_family_def(name, n).compile()
    raise GameError(
        f"unknown game {name!r}; known games: {', '.join(game_names())}; "
        f"known families (as family@params): {', '.join(family_names())}; "
        f"or {FILE_GAME_PREFIX}<path> for a GameDef JSON file"
    )


def load_game_file(path: str) -> GameSpec:
    """Compile a :class:`~repro.games.dsl.GameDef` JSON file."""
    from repro.games.dsl import GameDef

    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise GameError(f"cannot read game file {path!r}: {exc}") from None
    return GameDef.from_json(text).compile()


def game_names() -> list[str]:
    return sorted(GAME_REGISTRY)


def iter_games() -> Iterator[tuple[str, GameMaker]]:
    for name in game_names():
        yield name, GAME_REGISTRY[name]


register_game("consensus", lambda n: consensus_game(n))
register_game("byz-agreement", lambda n: byzantine_agreement_game(n))
register_game("section64", lambda n: section64_game(n, k=max(1, (n - 1) // 3)))
register_game("chicken", lambda n: chicken_game())
register_game("free-rider", lambda n: free_rider_game(n))
register_game("shamir-secret", lambda n: shamir_secret_game())
register_game("volunteer", lambda n: volunteer_game(n))
register_game("battle-of-sexes", lambda n: battle_of_sexes())
register_game(
    "public-goods",
    lambda n: public_goods_game(
        max(n, 4), max(2, n // 3), pot=1.5 * max(n, 4), cost=1.0
    ),
)
register_game("minority", lambda n: minority_game(n if n % 2 else n + 1))
