"""Normal-form Bayesian games (the paper's *underlying game* Γ).

A game has ``n`` players, per-player finite action sets, a finite type space
with a commonly-known joint distribution, and a utility function mapping a
(type profile, action profile) pair to a payoff vector. The underlying game
is synchronous — players move simultaneously, no environment — matching
Section 2 of the paper. Asynchrony enters only in *extensions* of the game
(mediator games and cheap-talk games), built elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import GameError

TypeProfile = tuple
ActionProfile = tuple


@dataclass(frozen=True)
class TypeSpace:
    """A finite joint distribution over type profiles.

    ``support`` maps each type profile (a tuple, one entry per player) to its
    probability. Player ``i``'s marginal type set is derived on demand.
    """

    n: int
    support: tuple[tuple[TypeProfile, float], ...]

    @staticmethod
    def from_dict(n: int, dist: dict) -> "TypeSpace":
        items = tuple(sorted(dist.items(), key=lambda kv: repr(kv[0])))
        return TypeSpace(n, items)

    def to_dict(self) -> dict:
        """The ``{profile: probability}`` mapping ``from_dict`` accepts
        (``TypeSpace.from_dict(ts.n, ts.to_dict())`` round-trips up to
        ``from_dict``'s canonical support ordering)."""
        return {profile: prob for profile, prob in self.support}

    @staticmethod
    def single(profile: Sequence) -> "TypeSpace":
        """Complete-information game: one type profile with probability 1."""
        profile = tuple(profile)
        return TypeSpace(len(profile), ((profile, 1.0),))

    @staticmethod
    def uniform(profiles: Iterable[Sequence]) -> "TypeSpace":
        profiles = [tuple(p) for p in profiles]
        if not profiles:
            raise GameError("type space needs at least one profile")
        prob = 1.0 / len(profiles)
        return TypeSpace(len(profiles[0]), tuple((p, prob) for p in profiles))

    @staticmethod
    def independent_uniform(per_player_types: Sequence[Sequence]) -> "TypeSpace":
        """Independent uniform types: the common case in our experiments."""
        import itertools

        profiles = list(itertools.product(*per_player_types))
        return TypeSpace.uniform(profiles)

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.support)
        if abs(total - 1.0) > 1e-9:
            raise GameError(f"type distribution sums to {total}, not 1")
        for profile, prob in self.support:
            if len(profile) != self.n:
                raise GameError(
                    f"type profile {profile!r} has wrong arity (n={self.n})"
                )
            if prob < 0:
                raise GameError("negative type probability")

    def profiles(self) -> list[TypeProfile]:
        return [p for p, _ in self.support]

    def probability(self, profile: TypeProfile) -> float:
        for p, prob in self.support:
            if p == profile:
                return prob
        return 0.0

    def player_types(self, i: int) -> list:
        seen = []
        for profile, _ in self.support:
            if profile[i] not in seen:
                seen.append(profile[i])
        return seen

    def coalition_profiles(self, coalition: Sequence[int]) -> list[tuple]:
        """Distinct restrictions x_K of type profiles to ``coalition``."""
        seen = []
        for profile, _ in self.support:
            restricted = tuple(profile[i] for i in coalition)
            if restricted not in seen:
                seen.append(restricted)
        return seen

    def conditional(self, coalition: Sequence[int], x_k: tuple) -> list[tuple[TypeProfile, float]]:
        """The distribution Pr(x' | x'_K = x_K) as (profile, prob) pairs.

        This is the paper's ``T(x_K)`` conditioning used in the
        coalition-aware expected utility u_i(Γ, σ, x_K).
        """
        matching = [
            (profile, prob)
            for profile, prob in self.support
            if tuple(profile[i] for i in coalition) == tuple(x_k)
        ]
        total = sum(prob for _, prob in matching)
        if total == 0:
            raise GameError(f"coalition types {x_k!r} have zero probability")
        return [(profile, prob / total) for profile, prob in matching]


class BayesianGame:
    """An n-player normal-form Bayesian game.

    ``utility(type_profile, action_profile)`` must return a sequence of n
    payoffs. Utilities are cached since solution-concept checking evaluates
    the same cells many times.
    """

    def __init__(
        self,
        n: int,
        action_sets: Sequence[Sequence[Any]],
        type_space: TypeSpace,
        utility: Callable[[TypeProfile, ActionProfile], Sequence[float]],
        name: str = "game",
    ) -> None:
        if len(action_sets) != n:
            raise GameError("need one action set per player")
        if type_space.n != n:
            raise GameError("type space arity does not match player count")
        for i, actions in enumerate(action_sets):
            if not actions:
                raise GameError(f"player {i} has an empty action set")
        self.n = n
        self.action_sets = [list(a) for a in action_sets]
        self.type_space = type_space
        self._utility = utility
        self.name = name
        self._cache: dict[tuple, tuple[float, ...]] = {}

    # -- core ---------------------------------------------------------------

    def players(self) -> range:
        return range(self.n)

    def utility(self, types: TypeProfile, actions: ActionProfile) -> tuple[float, ...]:
        key = (tuple(types), tuple(actions))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = tuple(float(u) for u in self._utility(key[0], key[1]))
        if len(value) != self.n:
            raise GameError(
                f"utility returned {len(value)} payoffs for {self.n} players"
            )
        self._cache[key] = value
        return value

    def utility_of(self, i: int, types: TypeProfile, actions: ActionProfile) -> float:
        return self.utility(types, actions)[i]

    def validate_action_profile(self, actions: ActionProfile) -> None:
        for i, a in enumerate(actions):
            if a not in self.action_sets[i]:
                raise GameError(f"action {a!r} not available to player {i}")

    def utility_bound(self) -> float:
        """Max |u_i| over all cells — the paper's M/2 bound (Thm 4.2)."""
        import itertools

        bound = 0.0
        for types in self.type_space.profiles():
            for actions in itertools.product(*self.action_sets):
                for u in self.utility(types, actions):
                    bound = max(bound, abs(u))
        return bound

    def action_profiles(self) -> list[ActionProfile]:
        import itertools

        return list(itertools.product(*self.action_sets))

    def with_utility(
        self,
        utility: Callable[[TypeProfile, ActionProfile], Sequence[float]],
        name: Optional[str] = None,
    ) -> "BayesianGame":
        """A *utility variant* Γ(u'): same tree, different payoffs (Sec 4)."""
        return BayesianGame(
            self.n,
            self.action_sets,
            self.type_space,
            utility,
            name=name or f"{self.name}-variant",
        )

    def __repr__(self) -> str:
        sizes = "x".join(str(len(a)) for a in self.action_sets)
        return f"<BayesianGame {self.name!r} n={self.n} actions={sizes}>"
