"""Additional games: volunteering, public goods, battle of the sexes, minority.

These extend the core library (:mod:`repro.games.library`) with further
mediator-shaped coordination problems used by the extended experiments and
examples. Like the core library, every game is declarative data — a
``<name>_def`` function builds the :class:`~repro.games.dsl.GameDef`
(payoff expression or table, named mediator rule, punishment, encodings)
and the public game function compiles it to the usual
:class:`~repro.games.library.GameSpec`.
"""

from __future__ import annotations

from repro.errors import GameError
from repro.games.dsl import (
    GameDef,
    decoding_pairs,
    encoding_pairs,
    shared_actions,
)
from repro.games.library import GameSpec


def volunteer_def(n: int = 5, benefit: float = 2.0, cost: float = 1.2) -> GameDef:
    """The volunteer's dilemma as declarative data."""
    if not 0 < cost < benefit:
        raise GameError("need 0 < cost < benefit")
    return GameDef(
        name=f"volunteer(n={n})",
        n=n,
        actions=shared_actions(n, ("go", "stay")),
        types={"kind": "single", "profile": (0,) * n},
        payoff={
            "kind": "expr",
            "params": {"benefit": benefit, "cost": cost},
            "expr": (
                "(benefit if count('go') >= 1 else 0.0) - "
                "(cost if me == 'go' else 0.0)"
            ),
        },
        mediator={
            "rule": "rotate-duty",
            "params": {"count": 1, "active": "go", "idle": "stay"},
        },
        punishment={"kind": "constant", "action": "stay"},
        punishment_strength=1,
        default_move={"kind": "constant", "action": "stay"},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs(("go", "stay")),
        notes="Mediator appoints exactly one volunteer.",
    )


def volunteer_game(n: int = 5, benefit: float = 2.0, cost: float = 1.2) -> GameSpec:
    """Volunteer's dilemma with a rotating mediator.

    Everyone gets ``benefit`` if at least one player volunteers; the
    volunteer pays ``cost`` < ``benefit``. Without coordination the mixed
    equilibrium wastes value on duplicated or missing volunteers; the
    mediator picks exactly one volunteer uniformly. Obedience is an
    equilibrium because an appointed volunteer who shirks risks the
    no-volunteer outcome (it is the only appointee).
    """
    return volunteer_def(n, benefit, cost).compile()


def battle_of_sexes_def() -> GameDef:
    """Battle of the sexes as declarative data."""
    return GameDef(
        name="battle-of-sexes",
        n=2,
        actions=shared_actions(2, ("A", "B")),
        types={"kind": "single", "profile": (0, 0)},
        payoff={
            "kind": "table",
            "cells": (
                ((0, 0), ("A", "A"), (3.0, 2.0)),
                ((0, 0), ("B", "B"), (2.0, 3.0)),
                ((0, 0), ("A", "B"), (0.0, 0.0)),
                ((0, 0), ("B", "A"), (0.0, 0.0)),
            ),
        },
        mediator={
            "rule": "table",
            "params": {
                "cells": ((("A", "A"), 0.5), (("B", "B"), 0.5)),
            },
        },
        punishment=None,
        default_move={"kind": "constant", "action": "A"},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs(("A", "B")),
        notes="Fair coin between the two pure equilibria.",
    )


def battle_of_sexes() -> GameSpec:
    """Battle of the sexes with a fair public-coin mediator.

    Payoffs: coordinating on player 0's favourite gives (3,2); on player
    1's favourite (2,3); miscoordination gives (0,0). The mediator flips a
    fair coin between the two pure equilibria — the textbook use of a
    correlated device for equity.
    """
    return battle_of_sexes_def().compile()


def public_goods_def(
    n: int = 6, threshold: int = 4, pot: float = 6.0, cost: float = 1.0
) -> GameDef:
    """The threshold public-goods game as declarative data."""
    if not threshold <= n:
        raise GameError("threshold must be <= n")
    if pot / n <= cost:
        raise GameError("need pot/n > cost for pivotality")
    return GameDef(
        name=f"public-goods(n={n},m={threshold})",
        n=n,
        actions=shared_actions(n, ("contribute", "defect")),
        types={"kind": "single", "profile": (0,) * n},
        payoff={
            "kind": "expr",
            "params": {"m": threshold, "pot": pot, "cost": cost},
            "where": {"share": "pot / n if count('contribute') >= m else 0.0"},
            "expr": "share - (cost if me == 'contribute' else 0.0)",
        },
        mediator={
            "rule": "rotate-duty",
            "params": {"count": threshold, "active": "contribute",
                       "idle": "defect"},
        },
        punishment={"kind": "constant", "action": "defect"},
        punishment_strength=1,
        default_move={"kind": "constant", "action": "defect"},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs(("contribute", "defect")),
        notes="Mediator assigns exactly `threshold` contributors.",
    )


def public_goods_game(
    n: int = 6, threshold: int = 4, pot: float = 6.0, cost: float = 1.0
) -> GameSpec:
    """Threshold public-goods game with mediator-assigned contributors.

    The pot (``pot`` split equally) is produced iff at least ``threshold``
    players contribute (each paying ``cost``). The mediator draws exactly
    ``threshold`` contributors uniformly. Parameters are pivotal: a
    designated contributor who shirks forfeits the pot share, which
    outweighs the saved cost when pot/n > cost.
    """
    return public_goods_def(n, threshold, pot, cost).compile()


def minority_def(n: int = 5) -> GameDef:
    """The odd-player minority game as declarative data."""
    if n % 2 == 0:
        raise GameError("minority game needs an odd player count")
    return GameDef(
        name=f"minority(n={n})",
        n=n,
        actions=shared_actions(n, (0, 1)),
        types={"kind": "single", "profile": (0,) * n},
        payoff={
            "kind": "expr",
            "where": {"minority": "1 if count(1) * 2 < n else 0"},
            "expr": "1.0 if me == minority else 0.0",
        },
        mediator={
            "rule": "rotate-duty",
            "params": {"count": (n - 1) // 2, "active": 1, "idle": 0},
        },
        punishment={"kind": "uniform", "actions": (0, 1)},
        punishment_strength=1,
        default_move={"kind": "constant", "action": 0},
        type_encoding=encoding_pairs((0,)),
        action_decoding=decoding_pairs((0, 1)),
        notes="Mediator assigns the largest possible minority.",
    )


def minority_game(n: int = 5) -> GameSpec:
    """Odd-player minority game balanced by the mediator.

    Each of an odd number of players picks a side; players on the minority
    side earn 1. The mediator draws a uniformly random split with exactly
    ``(n-1)/2`` players on side 1 (the largest possible minority) and tells
    each player its side — maximising total welfare while keeping every
    player's ex-ante payoff equal.
    """
    return minority_def(n).compile()
