"""Additional games: volunteering, public goods, battle of the sexes, minority.

These extend the core library (:mod:`repro.games.library`) with further
mediator-shaped coordination problems used by the extended experiments and
examples. Each follows the same :class:`~repro.games.library.GameSpec`
contract: an exact ``mediator_dist``, encodings, and (where meaningful) a
punishment profile.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import GameError
from repro.games.bayesian import BayesianGame, TypeSpace
from repro.games.library import GameSpec
from repro.games.strategies import ConstantStrategy, StrategyProfile, UniformStrategy


def volunteer_game(n: int = 5, benefit: float = 2.0, cost: float = 1.2) -> GameSpec:
    """Volunteer's dilemma with a rotating mediator.

    Everyone gets ``benefit`` if at least one player volunteers; the
    volunteer pays ``cost`` < ``benefit``. Without coordination the mixed
    equilibrium wastes value on duplicated or missing volunteers; the
    mediator picks exactly one volunteer uniformly. Obedience is an
    equilibrium because an appointed volunteer who shirks risks the
    no-volunteer outcome (it is the only appointee).
    """
    if not 0 < cost < benefit:
        raise GameError("need 0 < cost < benefit")

    def utility(types, actions):
        volunteers = [i for i, a in enumerate(actions) if a == "go"]
        base = benefit if volunteers else 0.0
        return [
            base - (cost if i in volunteers else 0.0) for i in range(n)
        ]

    game = BayesianGame(
        n=n,
        action_sets=[["go", "stay"]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=utility,
        name=f"volunteer(n={n})",
    )

    def mediator_fn(reports, rng):
        chosen = rng.randrange(n)
        return tuple("go" if i == chosen else "stay" for i in range(n))

    def mediator_dist(reports):
        prob = 1.0 / n
        return {
            tuple("go" if i == chosen else "stay" for i in range(n)): prob
            for chosen in range(n)
        }

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: "go", 1: "stay"},
        punishment=StrategyProfile([ConstantStrategy("stay")] * n),
        punishment_strength=1,
        default_moves=lambda i, t: "stay",
        notes="Mediator appoints exactly one volunteer.",
    )


def battle_of_sexes() -> GameSpec:
    """Battle of the sexes with a fair public-coin mediator.

    Payoffs: coordinating on player 0's favourite gives (3,2); on player
    1's favourite (2,3); miscoordination gives (0,0). The mediator flips a
    fair coin between the two pure equilibria — the textbook use of a
    correlated device for equity.
    """
    payoffs = {
        ("A", "A"): (3.0, 2.0),
        ("B", "B"): (2.0, 3.0),
        ("A", "B"): (0.0, 0.0),
        ("B", "A"): (0.0, 0.0),
    }
    game = BayesianGame(
        n=2,
        action_sets=[["A", "B"], ["A", "B"]],
        type_space=TypeSpace.single([0, 0]),
        utility=lambda t, a: payoffs[tuple(a)],
        name="battle-of-sexes",
    )

    def mediator_fn(reports, rng):
        return ("A", "A") if rng.randrange(2) == 0 else ("B", "B")

    def mediator_dist(reports):
        return {("A", "A"): 0.5, ("B", "B"): 0.5}

    return GameSpec(
        name="battle-of-sexes",
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: "A", 1: "B"},
        punishment=None,
        default_moves=lambda i, t: "A",
        notes="Fair coin between the two pure equilibria.",
    )


def public_goods_game(
    n: int = 6, threshold: int = 4, pot: float = 6.0, cost: float = 1.0
) -> GameSpec:
    """Threshold public-goods game with mediator-assigned contributors.

    The pot (``pot`` split equally) is produced iff at least ``threshold``
    players contribute (each paying ``cost``). The mediator draws exactly
    ``threshold`` contributors uniformly. Parameters are pivotal: a
    designated contributor who shirks forfeits the pot share, which
    outweighs the saved cost when pot/n > cost.
    """
    if not threshold <= n:
        raise GameError("threshold must be <= n")
    if pot / n <= cost:
        raise GameError("need pot/n > cost for pivotality")

    def utility(types, actions):
        contributors = sum(1 for a in actions if a == "contribute")
        share = pot / n if contributors >= threshold else 0.0
        return [
            share - (cost if actions[i] == "contribute" else 0.0)
            for i in range(n)
        ]

    game = BayesianGame(
        n=n,
        action_sets=[["contribute", "defect"]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=utility,
        name=f"public-goods(n={n},m={threshold})",
    )
    subsets = list(itertools.combinations(range(n), threshold))

    def mediator_fn(reports, rng):
        chosen = subsets[rng.randrange(len(subsets))]
        return tuple(
            "contribute" if i in chosen else "defect" for i in range(n)
        )

    def mediator_dist(reports):
        prob = 1.0 / len(subsets)
        return {
            tuple(
                "contribute" if i in chosen else "defect" for i in range(n)
            ): prob
            for chosen in subsets
        }

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: "contribute", 1: "defect"},
        punishment=StrategyProfile([ConstantStrategy("defect")] * n),
        punishment_strength=1,
        default_moves=lambda i, t: "defect",
        notes="Mediator assigns exactly `threshold` contributors.",
    )


def minority_game(n: int = 5) -> GameSpec:
    """Odd-player minority game balanced by the mediator.

    Each of an odd number of players picks a side; players on the minority
    side earn 1. The mediator draws a uniformly random split with exactly
    ``(n-1)/2`` players on side 1 (the largest possible minority) and tells
    each player its side — maximising total welfare while keeping every
    player's ex-ante payoff equal.
    """
    if n % 2 == 0:
        raise GameError("minority game needs an odd player count")

    def utility(types, actions):
        ones = sum(1 for a in actions if a == 1)
        minority = 1 if ones * 2 < n else 0
        return [1.0 if actions[i] == minority else 0.0 for i in range(n)]

    game = BayesianGame(
        n=n,
        action_sets=[[0, 1]] * n,
        type_space=TypeSpace.single([0] * n),
        utility=utility,
        name=f"minority(n={n})",
    )
    size = (n - 1) // 2
    subsets = list(itertools.combinations(range(n), size))

    def mediator_fn(reports, rng):
        chosen = subsets[rng.randrange(len(subsets))]
        return tuple(1 if i in chosen else 0 for i in range(n))

    def mediator_dist(reports):
        prob = 1.0 / len(subsets)
        return {
            tuple(1 if i in chosen else 0 for i in range(n)): prob
            for chosen in subsets
        }

    return GameSpec(
        name=game.name,
        game=game,
        mediator_fn=mediator_fn,
        mediator_dist=mediator_dist,
        type_encoding={0: 0},
        action_decoding={0: 0, 1: 1},
        punishment=StrategyProfile([UniformStrategy([0, 1])] * n),
        punishment_strength=1,
        default_moves=lambda i, t: 0,
        notes="Mediator assigns the largest possible minority.",
    )
