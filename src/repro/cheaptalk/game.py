"""The asynchronous cheap-talk game Γ_CT.

Players communicate only with each other over private pairwise channels;
the mediator's computation is replaced by the MPC engine evaluating the
mediator circuit. A :class:`CheapTalkPlayer` hosts the engine session,
decodes its private output wire into an underlying-game action, makes its
move, and *keeps serving* protocol messages afterwards (the paper's
observation that a player who has moved may still need to answer messages
so that others can move).

Deadlock semantics mirror the mediator game: players that never move get
their AH will (if any) or the game's default move.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.broadcast.base import SessionHost
from repro.cheaptalk.circuits import mediator_circuit_for, output_label
from repro.circuits import Circuit
from repro.errors import CompilationError, GameError
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import GameSpec
from repro.mediator.games import MediatorRun
from repro.mpc import TrustedSetup, mpc_sid
from repro.sim import Runtime, Scheduler, TimingModel
from repro.sim.runtime import RunResult

ENGINE_SID = mpc_sid("cheap-talk")


class CheapTalkPlayer(SessionHost):
    """Honest cheap-talk player: run the engine, move, keep serving."""

    def __init__(
        self,
        spec: GameSpec,
        pid: int,
        own_type: Any,
        config: dict,
        will: Optional[Callable[[int, Any], Any]] = None,
    ) -> None:
        self.spec = spec
        self.own_type = own_type
        self.will = will
        peers = list(range(spec.game.n))
        super().__init__(pid, peers, config, on_ready=self._kick)

    def _kick(self, host: "CheapTalkPlayer") -> None:
        self.await_session(ENGINE_SID, self._on_engine_result)

    def _on_engine_result(self, sid: tuple, outputs: dict) -> None:
        encoded = outputs.get(output_label(self.me))
        if encoded is None or self._ctx is None:
            return
        try:
            action = self.spec.decode_action(encoded)
        except KeyError:
            # A corrupted opening decoded to garbage outside the action
            # encoding (possible only in ablation/naive modes): the player
            # cannot follow the recommendation and makes no move here — the
            # deadlock semantics (will / default move) take over.
            self._ctx.log("undecodable-recommendation", value=encoded)
            return
        if not self._ctx.has_output():
            self._ctx.output(action)

    def _will_rng(self):
        """Private randomness for executing a randomized will.

        Seeded from this player's *private* setup shares, so other players
        (and the environment) cannot predict a randomized punishment move.
        """
        import random

        from repro.utils.rng import derive_seed

        pack = self.config.get("setup")
        fingerprint = 0
        if pack is not None and pack.shares:
            fingerprint = sum(int(v) for v in pack.shares.values()) % (2**61)
        seed = derive_seed(self.config.get("coin_seed", 0), "will", self.me,
                           fingerprint)
        return random.Random(seed)

    def on_deadlock(self, pid: int) -> Optional[Any]:
        if self.will is None:
            return None
        try:
            return self.will(pid, self.own_type, self._will_rng())
        except TypeError:
            return self.will(pid, self.own_type)


class CheapTalkGame:
    """Γ_CT: the cheap-talk extension of an underlying game."""

    def __init__(
        self,
        spec: GameSpec,
        k: int,
        t: int,
        mode: str = "bcg",
        approach: str = "default",
        field: Optional[GF] = None,
        will: Optional[Callable[[int, Any], Any]] = None,
        circuit: Optional[Circuit] = None,
        enforce_engine_bounds: bool = True,
    ) -> None:
        if approach not in ("default", "ah"):
            raise GameError(f"unknown deadlock approach {approach!r}")
        self.spec = spec
        self.k = k
        self.t = t
        self.mode = mode
        self.approach = approach
        self.field = field or GF(DEFAULT_PRIME)
        self.will = will
        self.circuit = circuit or mediator_circuit_for(spec, self.field)
        self.enforce_engine_bounds = enforce_engine_bounds
        self.fault_budget = k + t
        n = spec.game.n
        if enforce_engine_bounds:
            if mode == "bcg" and n <= 3 * self.fault_budget and self.fault_budget:
                raise CompilationError(
                    f"bcg cheap talk needs n > 3(k+t) for broadcast safety "
                    f"(n={n}, k+t={self.fault_budget})"
                )
            if mode == "bkr" and n <= 3 * self.fault_budget and self.fault_budget:
                raise CompilationError(
                    f"bkr cheap talk needs n > 3(k+t) (n={n}, k+t={self.fault_budget})"
                )

    @property
    def n(self) -> int:
        return self.spec.game.n

    # -- assembly -----------------------------------------------------------------

    def build_setup(self, seed: int) -> TrustedSetup:
        setup = TrustedSetup(
            self.field, list(range(self.n)), self.fault_budget, seed=seed,
            with_macs=(self.mode == "bkr"),
        )
        setup.deal_for_circuit(self.circuit)
        return setup

    def player_config(self, setup: TrustedSetup, pid: int, own_type: Any) -> dict:
        config = {
            "circuit": self.circuit,
            "engine_mode": self.mode,
            "mpc_input": self.spec.encode_type(own_type),
            "default_inputs": {
                p: self.spec.encode_type(
                    self.spec.game.type_space.profiles()[0][p]
                )
                for p in range(self.n)
            },
        }
        config.update(setup.host_config(pid))
        return config

    def processes(
        self,
        types: Sequence[Any],
        setup: TrustedSetup,
        deviations: Optional[Mapping[int, Callable]] = None,
    ) -> dict[int, Any]:
        deviations = deviations or {}
        procs: dict[int, Any] = {}
        for pid in range(self.n):
            config = self.player_config(setup, pid, types[pid])
            if pid in deviations:
                procs[pid] = deviations[pid](pid, types[pid], config)
            else:
                procs[pid] = CheapTalkPlayer(
                    self.spec, pid, types[pid], config, will=self.will
                )
        return procs

    # -- running --------------------------------------------------------------------

    def run(
        self,
        types: Sequence[Any],
        scheduler: Scheduler,
        seed: int = 0,
        deviations: Optional[Mapping[int, Callable]] = None,
        step_limit: int = 600_000,
        record_payloads: bool = False,
        timing: Optional[TimingModel] = None,
        record_trace: bool = True,
        runtime: str = "sim",
        latency: str = "zero",
        faults: Any = None,
    ) -> MediatorRun:
        types = tuple(types)
        setup = self.build_setup(seed)
        processes = self.processes(types, setup, deviations)
        if runtime == "sim":
            engine = Runtime(
                processes,
                scheduler,
                seed=seed,
                step_limit=step_limit,
                record_payloads=record_payloads,
                timing=timing,
                record_trace=record_trace,
                faults=faults,
            )
        else:
            # The asyncio substrate: same processes, same Network/Context
            # bookkeeping, delivery order decided by the latency model
            # (in-memory) or real localhost sockets ("net-tcp") instead
            # of the scheduler.
            from repro.net.runtime import NetRuntime

            engine = NetRuntime(
                processes,
                latency=latency,
                seed=seed,
                step_limit=step_limit,
                record_payloads=record_payloads,
                record_trace=record_trace,
                transport="tcp" if runtime == "net-tcp" else "memory",
                faults=faults,
            )
        result = engine.run()
        actions = self.resolve_actions(types, result)
        return MediatorRun(actions=actions, result=result, types=types)

    def resolve_actions(self, types: tuple, result: RunResult) -> tuple:
        actions = []
        for pid in range(self.n):
            if pid in result.outputs:
                actions.append(result.outputs[pid])
                continue
            move = None
            if self.approach == "ah":
                move = result.wills.get(pid)
            if move is None and self.spec.default_moves is not None:
                move = self.spec.default_moves(pid, types[pid])
            actions.append(move)
        return tuple(actions)

    def sample_outcomes(
        self,
        schedulers: Sequence[Scheduler],
        samples_per_scheduler: int = 8,
        type_profiles: Optional[Sequence[tuple]] = None,
        deviations: Optional[Mapping[int, Callable]] = None,
        seed: int = 0,
    ) -> dict[tuple, list[tuple]]:
        profiles = (
            list(type_profiles)
            if type_profiles is not None
            else self.spec.game.type_space.profiles()
        )
        out: dict[tuple, list[tuple]] = {}
        for types in profiles:
            rows: list[tuple] = []
            for s_idx, scheduler in enumerate(schedulers):
                for rep in range(samples_per_scheduler):
                    run = self.run(
                        types,
                        scheduler,
                        seed=seed + 104729 * s_idx + rep,
                        deviations=deviations,
                    )
                    rows.append(run.actions)
            out[tuple(types)] = rows
        return out
