"""The four cheap-talk compilers (Theorems 4.1, 4.2, 4.4, 4.5).

Each compiler checks its theorem's hypothesis — the bound on n, the
required punishment strength, bounded utilities for the ε results — and
assembles a :class:`~repro.cheaptalk.game.CheapTalkGame` with the matching
substrate (errorless BCG-style engine or statistical BKR-style engine),
deadlock approach, and wills.

The bounds are enforced exactly as the paper states them. Our substrate
(trusted offline setup instead of online AVSS, cf. DESIGN.md §3) would
tolerate slightly weaker bounds in places; the compilers deliberately do
not exploit that, so experiments measure the paper's own parameter space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cheaptalk.game import CheapTalkGame
from repro.errors import CompilationError
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import GameSpec

_EPSILON_PRIMES = [
    101, 257, 1009, 10007, 100003, 1000003, 10000019, DEFAULT_PRIME
]


@dataclass
class CompiledProtocol:
    """A cheap-talk strategy profile implementing a mediator strategy."""

    theorem: str
    bound: str
    game: CheapTalkGame
    spec: GameSpec
    k: int
    t: int
    epsilon: Optional[float] = None
    epsilon_achieved: Optional[float] = None
    notes: str = ""

    @property
    def circuit_size(self) -> int:
        return self.game.circuit.size

    def describe(self) -> str:
        eps = (
            f", ε≤{self.epsilon_achieved:.3g}" if self.epsilon_achieved else ""
        )
        return (
            f"{self.theorem} [{self.bound}] on {self.spec.name}: n={self.spec.game.n}, "
            f"k={self.k}, t={self.t}, engine={self.game.mode}, "
            f"c={self.circuit_size}{eps}"
        )


def punishment_will(spec: GameSpec) -> Callable:
    """A will executing the spec's punishment strategy (possibly mixed)."""
    if spec.punishment is None:
        raise CompilationError(f"spec {spec.name!r} has no punishment strategy")

    def will(pid: int, own_type, rng):
        return spec.punishment[pid].sample(own_type, rng)

    return will


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CompilationError(message)


def _epsilon_bound(field: GF, game: CheapTalkGame) -> float:
    """Union bound on the BKR failure probability for one run.

    Each MAC verification accepts a forged share with probability at most
    2/p; a run verifies at most n shares per opening and there are
    2·(mul gates) + (output wires) openings.
    """
    circuit = game.circuit
    n_openings = 2 * circuit.mul_count + len(circuit.outputs)
    checks = max(1, n_openings * game.n)
    return min(1.0, 2.0 * checks / field.p)


def compile_theorem41(
    spec: GameSpec,
    k: int,
    t: int,
    approach: str = "default",
    field: Optional[GF] = None,
) -> CompiledProtocol:
    """Theorem 4.1: n > 4k + 4t, errorless, no punishment needed.

    Works identically under the AH approach and the default-move approach
    (the probability of deadlock under honest play is 0).
    """
    n = spec.game.n
    _require(n > 4 * k + 4 * t, f"Theorem 4.1 needs n > 4k+4t (n={n}, k={k}, t={t})")
    game = CheapTalkGame(
        spec, k, t, mode="bcg", approach=approach, field=field
    )
    return CompiledProtocol(
        theorem="Theorem 4.1",
        bound="n > 4k+4t",
        game=game,
        spec=spec,
        k=k,
        t=t,
        notes="Errorless BCG-style substrate; O(nNc) messages.",
    )


def compile_theorem42(
    spec: GameSpec,
    k: int,
    t: int,
    epsilon: float = 1e-9,
    approach: str = "default",
    field: Optional[GF] = None,
) -> CompiledProtocol:
    """Theorem 4.2: n > 3k + 3t, ε-implementation, bounded utilities.

    The field is chosen so the statistical substrate's failure probability
    is at most ε (forgery probability 2/p per MAC check, union-bounded).
    """
    n = spec.game.n
    _require(n > 3 * k + 3 * t, f"Theorem 4.2 needs n > 3k+3t (n={n}, k={k}, t={t})")
    _require(0 < epsilon <= 1, f"epsilon must be in (0, 1], got {epsilon}")
    if field is None:
        for p in _EPSILON_PRIMES:
            candidate = GF(p)
            game = CheapTalkGame(
                spec, k, t, mode="bkr", approach=approach, field=candidate
            )
            if _epsilon_bound(candidate, game) <= epsilon:
                field = candidate
                break
        else:  # pragma: no cover - DEFAULT_PRIME always suffices
            raise CompilationError("no field large enough for epsilon")
    game = CheapTalkGame(spec, k, t, mode="bkr", approach=approach, field=field)
    achieved = _epsilon_bound(field, game)
    _require(
        achieved <= epsilon,
        f"field GF({field.p}) gives ε={achieved:.3g} > requested {epsilon:.3g}",
    )
    return CompiledProtocol(
        theorem="Theorem 4.2",
        bound="n > 3k+3t",
        game=game,
        spec=spec,
        k=k,
        t=t,
        epsilon=epsilon,
        epsilon_achieved=achieved,
        notes="Statistical BKR-style substrate; ε-(k,t)-robust.",
    )


def compile_theorem44(
    spec: GameSpec,
    k: int,
    t: int,
    field: Optional[GF] = None,
) -> CompiledProtocol:
    """Theorem 4.4: n > 3k + 4t with a (k+t)-punishment, AH approach.

    The punishment strategy is placed in every honest player's will; if the
    protocol deadlocks (which requires rational players to stall, since the
    substrate tolerates the t malicious alone), the punishment makes every
    potential staller worse off.
    """
    n = spec.game.n
    _require(n > 3 * k + 4 * t, f"Theorem 4.4 needs n > 3k+4t (n={n}, k={k}, t={t})")
    _require(
        spec.punishment is not None,
        f"Theorem 4.4 needs a punishment strategy for {spec.name!r}",
    )
    _require(
        spec.punishment_strength >= k + t,
        f"Theorem 4.4 needs a (k+t)-punishment; spec certifies only "
        f"{spec.punishment_strength} (need {k + t})",
    )
    game = CheapTalkGame(
        spec, k, t, mode="bcg", approach="ah", field=field,
        will=punishment_will(spec),
    )
    return CompiledProtocol(
        theorem="Theorem 4.4",
        bound="n > 3k+4t",
        game=game,
        spec=spec,
        k=k,
        t=t,
        notes="Punishment in wills; weak implementation uses O(nc) messages.",
    )


def compile_theorem45(
    spec: GameSpec,
    k: int,
    t: int,
    epsilon: float = 1e-9,
    field: Optional[GF] = None,
) -> CompiledProtocol:
    """Theorem 4.5: n > 2k + 3t, ε, with a (2k+2t)-punishment, AH approach."""
    n = spec.game.n
    _require(n > 2 * k + 3 * t, f"Theorem 4.5 needs n > 2k+3t (n={n}, k={k}, t={t})")
    _require(0 < epsilon <= 1, f"epsilon must be in (0, 1], got {epsilon}")
    _require(
        spec.punishment is not None,
        f"Theorem 4.5 needs a punishment strategy for {spec.name!r}",
    )
    _require(
        spec.punishment_strength >= 2 * k + 2 * t,
        f"Theorem 4.5 needs a (2k+2t)-punishment; spec certifies only "
        f"{spec.punishment_strength} (need {2 * k + 2 * t})",
    )
    if field is None:
        for p in _EPSILON_PRIMES:
            candidate = GF(p)
            game = CheapTalkGame(
                spec, k, t, mode="bkr", approach="ah", field=candidate,
                will=punishment_will(spec),
            )
            if _epsilon_bound(candidate, game) <= epsilon:
                field = candidate
                break
        else:  # pragma: no cover
            raise CompilationError("no field large enough for epsilon")
    game = CheapTalkGame(
        spec, k, t, mode="bkr", approach="ah", field=field,
        will=punishment_will(spec),
    )
    achieved = _epsilon_bound(field, game)
    return CompiledProtocol(
        theorem="Theorem 4.5",
        bound="n > 2k+3t",
        game=game,
        spec=spec,
        k=k,
        t=t,
        epsilon=epsilon,
        epsilon_achieved=achieved,
        notes="Statistical substrate plus punishment in wills.",
    )
