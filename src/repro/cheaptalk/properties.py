"""Empirical checks of the Section 5 security properties.

The companion-paper properties — t-cotermination (Def 5.3), t-emulation
(Def 5.2), t-bisimulation (Def 5.1) — quantify over all adversaries and all
schedulers; the checkers here evaluate them over a supplied *finite* family
of adversaries and environments, which is how the experiment suite
exercises Theorems 5.4/5.5 (E7 in DESIGN.md). A reported violation is a
real counterexample; a pass certifies the property over the tested family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.cheaptalk.game import CheapTalkGame
from repro.games.outcomes import outcome_map_distance
from repro.mediator.games import MediatorGame
from repro.sim import Scheduler


@dataclass
class PropertyReport:
    name: str
    holds: bool
    worst: float = 0.0
    details: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def check_cotermination(
    game: CheapTalkGame,
    schedulers: Sequence[Scheduler],
    adversaries: Sequence[Optional[Mapping[int, Callable]]],
    trials: int = 5,
    seed: int = 0,
) -> PropertyReport:
    """t-cotermination: all honest players move, or none do, in every run."""
    report = PropertyReport(name="t-cotermination", holds=True)
    types = game.spec.game.type_space.profiles()[0]
    for a_idx, deviations in enumerate(adversaries):
        corrupted = set(deviations or {})
        honest = [p for p in range(game.n) if p not in corrupted]
        for s_idx, scheduler in enumerate(schedulers):
            for trial in range(trials):
                run = game.run(
                    types,
                    scheduler,
                    seed=seed + 31 * a_idx + 7 * s_idx + trial,
                    deviations=deviations,
                )
                moved = [p for p in honest if p in run.result.outputs]
                if moved and len(moved) != len(honest):
                    report.holds = False
                    report.details.append(
                        f"adversary #{a_idx}, scheduler {scheduler.name}, "
                        f"trial {trial}: only {moved} of {honest} moved"
                    )
    return report


def _paired_distance(
    ct_samples: Mapping[tuple, Sequence[tuple]],
    med_samples: Mapping[tuple, Sequence[tuple]],
) -> float:
    def to_map(samples):
        out = {}
        for types, rows in samples.items():
            dist: dict[tuple, float] = {}
            w = 1.0 / len(rows)
            for row in rows:
                dist[tuple(row)] = dist.get(tuple(row), 0.0) + w
            out[types] = dist
        return out

    return outcome_map_distance(to_map(ct_samples), to_map(med_samples))


def check_emulation(
    ct_game: CheapTalkGame,
    mediator_game: MediatorGame,
    schedulers: Sequence[Scheduler],
    adversary_pairs: Sequence[tuple],
    epsilon: float,
    samples_per_scheduler: int = 16,
    seed: int = 0,
) -> PropertyReport:
    """(ε,t)-emulation over a family of (cheap-talk, mediator) adversary pairs.

    ``adversary_pairs`` contains tuples ``(ct_deviations, med_deviations)``
    — the mediator-game adversary that is claimed to reproduce the cheap-
    talk adversary's outcome distribution (H(τ') in Def 5.2). For each pair
    the outcome maps must be within ε (plus sampling tolerance).
    """
    report = PropertyReport(name=f"({epsilon},t)-emulation", holds=True)
    tolerance = _sampling_tolerance(samples_per_scheduler * len(schedulers))
    for idx, (ct_dev, med_dev) in enumerate(adversary_pairs):
        ct_samples = ct_game.sample_outcomes(
            schedulers, samples_per_scheduler, deviations=ct_dev, seed=seed
        )
        med_samples = mediator_game.sample_outcomes(
            schedulers, samples_per_scheduler, deviations=med_dev, seed=seed + 1
        )
        distance = _paired_distance(ct_samples, med_samples)
        report.worst = max(report.worst, distance)
        if distance > epsilon + tolerance:
            report.holds = False
            report.details.append(
                f"pair #{idx}: outcome distance {distance:.4f} > "
                f"ε {epsilon} + tolerance {tolerance:.4f}"
            )
    return report


def check_bisimulation(
    ct_game: CheapTalkGame,
    mediator_game: MediatorGame,
    schedulers: Sequence[Scheduler],
    adversary_pairs: Sequence[tuple],
    epsilon: float,
    samples_per_scheduler: int = 16,
    seed: int = 0,
) -> PropertyReport:
    """(ε,t)-bisimulation: emulation in both directions over the family.

    Pairs are interpreted symmetrically: each (ct, med) pair must match in
    outcome distribution, and each mediator-game adversary must likewise be
    matched by its cheap-talk partner — over a finite family these coincide
    with two emulation checks with the pairing reversed.
    """
    forward = check_emulation(
        ct_game, mediator_game, schedulers, adversary_pairs, epsilon,
        samples_per_scheduler, seed,
    )
    backward = check_emulation(
        ct_game, mediator_game, schedulers,
        [(ct, med) for (ct, med) in adversary_pairs], epsilon,
        samples_per_scheduler, seed + 97,
    )
    report = PropertyReport(
        name=f"({epsilon},t)-bisimulation",
        holds=forward.holds and backward.holds,
        worst=max(forward.worst, backward.worst),
        details=forward.details + backward.details,
    )
    return report


def _sampling_tolerance(samples: int) -> float:
    """L1 sampling noise allowance for empirical distribution comparison.

    Two empirical distributions of m samples each over a small outcome
    space differ by O(sqrt(k/m)) in L1; we allow 3 standard errors over a
    nominal k=4 outcome support.
    """
    return 3.0 * (4.0 / max(samples, 1)) ** 0.5
