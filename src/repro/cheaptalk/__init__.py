"""Cheap-talk implementations of mediators — the paper's contribution.

The four compilers correspond to the paper's four upper-bound theorems:

* :func:`compile_theorem41` — ``n > 4k + 4t``, errorless, no punishment
  needed, works with both the AH and the default-move approach.
* :func:`compile_theorem42` — ``n > 3k + 3t``, ε-implementation /
  ε-(k,t)-robustness (ε controlled by the MAC field size).
* :func:`compile_theorem44` — ``n > 3k + 4t``, errorless, requires a
  (k+t)-punishment strategy placed in the players' wills (AH approach).
* :func:`compile_theorem45` — ``n > 2k + 3t``, ε, requires a
  (2k+2t)-punishment strategy (AH approach).
"""

from repro.cheaptalk.circuits import mediator_circuit_for
from repro.cheaptalk.game import CheapTalkGame, CheapTalkPlayer
from repro.cheaptalk.compiler import (
    CompiledProtocol,
    compile_theorem41,
    compile_theorem42,
    compile_theorem44,
    compile_theorem45,
)
from repro.cheaptalk.properties import (
    check_cotermination,
    check_emulation,
    check_bisimulation,
)

__all__ = [
    "mediator_circuit_for",
    "CheapTalkGame",
    "CheapTalkPlayer",
    "CompiledProtocol",
    "compile_theorem41",
    "compile_theorem42",
    "compile_theorem44",
    "compile_theorem45",
    "check_cotermination",
    "check_emulation",
    "check_bisimulation",
]
