"""Arithmetic-circuit mediators for the game library.

Each library game gets a hand-built circuit whose cleartext semantics agree
with the spec's ``mediator_fn``/``mediator_dist`` (tests enforce agreement).
Inputs are encoded types (``spec.encode_type``), outputs encoded actions
(``spec.decode_action``), one private output wire per player labelled
``act@<pid>``.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.circuits import Circuit
from repro.errors import MediatorError
from repro.field import GF
from repro.games.library import GameSpec


def output_label(pid: int) -> str:
    return f"act@{pid}"


def _coin_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Common random bit to everyone (consensus / section64 mediators)."""
    n = spec.game.n
    circuit = Circuit(field, f"coin-mediator({spec.name})")
    bit = circuit.randbit()
    for pid in range(n):
        circuit.output(bit, pid, output_label(pid))
    return circuit


def _majority_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Majority of reported bits to everyone (byzantine agreement)."""
    n = spec.game.n
    circuit = Circuit(field, f"majority-mediator({spec.name})")
    bits = [circuit.input(pid) for pid in range(n)]
    maj = circuit.majority(bits)
    for pid in range(n):
        circuit.output(maj, pid, output_label(pid))
    return circuit


def _chicken_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Uniform choice among (C,C), (C,D), (D,C); encoded C=1, D=0."""
    circuit = Circuit(field, "chicken-mediator")
    cell = circuit.randint(3)
    domain = [0, 1, 2]
    # cell 0 -> (C,C), 1 -> (C,D), 2 -> (D,C)
    out0 = circuit.lookup(cell, {0: 1, 1: 1, 2: 0}, domain)
    out1 = circuit.lookup(cell, {0: 1, 1: 0, 2: 1}, domain)
    circuit.output(out0, 0, output_label(0))
    circuit.output(out1, 1, output_label(1))
    return circuit


def _free_rider_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Uniformly choose a duty subset; tell each player share/ride.

    Encoded actions: share=0, ride=1 (matching the spec's decoding).
    """
    n = spec.game.n
    # Recover m from the spec name: free-rider(n=4,m=2).
    m = int(spec.name.split("m=")[1].rstrip(")"))
    subsets = list(itertools.combinations(range(n), m))
    circuit = Circuit(field, f"free-rider-mediator(n={n},m={m})")
    pick = circuit.randint(len(subsets))
    domain = list(range(len(subsets)))
    for pid in range(n):
        table = {
            idx: (0 if pid in subset else 1)
            for idx, subset in enumerate(subsets)
        }
        wire = circuit.lookup(pick, table, domain)
        circuit.output(wire, pid, output_label(pid))
    return circuit


def _shamir_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Linear reconstruction of the secret from the first d+1 share reports.

    Types are Shamir shares over Z_q embedded into the MPC field; the
    secret is a public linear combination (Lagrange weights at zero) of the
    first d+1 shares. No multiplications — reconstruction is free under
    MPC. Error correction against misreports is the ideal mediator's
    luxury; the circuit path documents this as a fidelity limit (misreports
    inside the quorum shift the recommendation, which the robustness
    experiments surface).
    """
    from repro.field import lagrange_coefficients_at_zero

    name = spec.name  # shamir-secret(n=5,q=5,d=2)
    q = int(name.split("q=")[1].split(",")[0])
    d = int(name.split("d=")[1].rstrip(")"))
    n = spec.game.n
    if field.p % q == 0:
        raise MediatorError("MPC field must differ from the share modulus")
    small = GF(q)
    xs = list(range(1, d + 2))
    lambdas = lagrange_coefficients_at_zero(small, xs)
    circuit = Circuit(field, f"shamir-mediator({name})")
    ins = [circuit.input(pid) for pid in range(d + 1)]
    # Compute sum(lambda_i * share_i) mod q via lookup of each scaled term.
    domain = list(range(q))
    acc = None
    for wire, lam in zip(ins, lambdas):
        table = {v: (int(lam) * v) % q for v in domain}
        term = circuit.lookup(wire, table, domain)
        acc = term if acc is None else circuit.add(acc, term)
    # acc is a sum of residues: reduce modulo q with one more lookup.
    sum_domain = list(range((q - 1) * (d + 1) + 1))
    secret = circuit.lookup(acc, {v: v % q for v in sum_domain}, sum_domain)
    for pid in range(n):
        circuit.output(secret, pid, output_label(pid))
    return circuit


def _uniform_choice_circuit(spec: GameSpec, field: GF) -> Circuit:
    """Generic builder: mediator_dist is uniform over its cells.

    One randint gate selects the cell; each player's output is a lookup
    from the cell index to its encoded action. Covers volunteer,
    public-goods, minority, battle-of-sexes and any other uniform
    correlated device with an exact ``mediator_dist``.
    """
    n = spec.game.n
    dist = spec.mediator_dist(spec.game.type_space.profiles()[0])
    cells = sorted(dist)
    probs = [dist[c] for c in cells]
    if max(probs) - min(probs) > 1e-9:
        raise MediatorError(
            f"uniform-choice builder needs a uniform mediator_dist "
            f"({spec.name})"
        )
    encode_action = {v: k for k, v in spec.action_decoding.items()}
    circuit = Circuit(field, f"uniform-mediator({spec.name})")
    pick = circuit.randint(len(cells))
    domain = list(range(len(cells)))
    for pid in range(n):
        table = {
            idx: encode_action[cell[pid]] for idx, cell in enumerate(cells)
        }
        wire = circuit.lookup(pick, table, domain)
        circuit.output(wire, pid, output_label(pid))
    return circuit


_BUILDERS: dict[str, Callable[[GameSpec, GF], Circuit]] = {
    "consensus": _coin_circuit,
    "section64": _coin_circuit,
    "byz-agreement": _majority_circuit,
    "chicken": _chicken_circuit,
    "free-rider": _free_rider_circuit,
    "shamir-secret": _shamir_circuit,
    "volunteer": _uniform_choice_circuit,
    "battle-of-sexes": _uniform_choice_circuit,
    "public-goods": _uniform_choice_circuit,
    "minority": _uniform_choice_circuit,
}


def mediator_circuit_for(spec: GameSpec, field: GF) -> Circuit:
    """Build the arithmetic-circuit mediator for a library game."""
    for prefix, builder in _BUILDERS.items():
        if spec.name.startswith(prefix) or spec.name == prefix:
            circuit = builder(spec, field)
            circuit.validate()
            return circuit
    raise MediatorError(f"no circuit builder for spec {spec.name!r}")
