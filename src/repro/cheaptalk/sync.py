"""Synchronous cheap talk: the R1 baseline the paper improves on.

R1 (ADGH/ADH): in the *synchronous* setting a mediator can be implemented
with cheap talk whenever n > 3k + 3t, errorless, no punishment, bounded
O(nNc) messages. This module compiles the same game specs through the
synchronous BGW-style engine so the repository can measure the cost of
asynchrony directly: the same game that needs n > 4k + 4t asynchronously
(Theorem 4.1) runs synchronously at n > 3k + 3t.

Execution happens on the one simulation kernel: ``SyncRuntime`` adapts the
round-based processes onto :class:`~repro.sim.runtime.Runtime` under the
:class:`~repro.sim.timing.LockStep` timing model, so the R1 baseline and
the asynchronous compilers differ only in their timing model and engine —
not in their delivery loop.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.cheaptalk.circuits import mediator_circuit_for, output_label
from repro.circuits import Circuit
from repro.errors import CompilationError
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import GameSpec
from repro.mpc import TrustedSetup
from repro.mpc.bgw import BgwParty
from repro.sim.sync import SyncProcess, SyncRuntime


class SyncCheapTalkPlayer(BgwParty):
    """BGW party that decodes its output wire into an underlying-game move."""

    def __init__(self, spec: GameSpec, *args, **kwargs) -> None:
        self.spec = spec
        super().__init__(*args, **kwargs)

    def on_round(self, ctx, inbox):
        super().on_round(ctx, inbox)
        if self.result is not None and not ctx.has_output():
            encoded = self.result.get(output_label(self.pid))
            if encoded is not None:
                ctx.output(self.spec.decode_action(encoded))


class SynchronousCheapTalk:
    """The synchronous cheap-talk game (R1 regime)."""

    def __init__(
        self,
        spec: GameSpec,
        k: int,
        t: int,
        field: Optional[GF] = None,
        circuit: Optional[Circuit] = None,
    ) -> None:
        n = spec.game.n
        if n <= 3 * k + 3 * t:
            raise CompilationError(
                f"R1 needs n > 3k+3t (n={n}, k={k}, t={t})"
            )
        self.spec = spec
        self.k = k
        self.t = t
        self.field = field or GF(DEFAULT_PRIME)
        self.circuit = circuit or mediator_circuit_for(spec, self.field)
        self.fault_budget = k + t

    @property
    def n(self) -> int:
        return self.spec.game.n

    def run(
        self,
        types: Sequence[Any],
        seed: int = 0,
        crashed: Sequence[int] = (),
    ):
        """One lock-step run; returns (actions, SyncRunResult)."""
        types = tuple(types)
        setup = TrustedSetup(
            self.field, list(range(self.n)), self.fault_budget, seed=seed,
            with_macs=False,
        )
        setup.deal_for_circuit(self.circuit)
        defaults = {
            p: self.spec.encode_type(self.spec.game.type_space.profiles()[0][p])
            for p in range(self.n)
        }
        processes: dict[int, SyncProcess] = {}
        for pid in range(self.n):
            if pid in crashed:
                processes[pid] = _SyncCrash()
                continue
            processes[pid] = SyncCheapTalkPlayer(
                self.spec,
                pid,
                self.n,
                self.fault_budget,
                self.field,
                self.circuit,
                setup.pack_for(pid),
                self.spec.encode_type(types[pid]),
                dict(defaults),
            )
        runtime = SyncRuntime(processes, seed=seed)
        result = runtime.run()
        actions = tuple(
            result.outputs.get(
                pid,
                self.spec.default_moves(pid, types[pid])
                if self.spec.default_moves
                else None,
            )
            for pid in range(self.n)
        )
        return actions, result


class _SyncCrash(SyncProcess):
    def on_round(self, ctx, inbox):
        pass


def compile_r1(
    spec: GameSpec, k: int, t: int, field: Optional[GF] = None
) -> SynchronousCheapTalk:
    """The synchronous baseline compiler (bound n > 3k + 3t)."""
    return SynchronousCheapTalk(spec, k, t, field=field)
