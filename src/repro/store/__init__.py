"""Durable, content-addressed experiment result store (SQLite, WAL).

See :mod:`repro.store.core` for the store itself and
:mod:`repro.store.fingerprint` for how keys are derived.
"""

from repro.store.core import (
    DEFAULT_STORE_DIR,
    ENV_SPOOL,
    ENV_STORE,
    ResultStore,
    StoreOutcome,
    default_store_path,
    open_store,
    resolve_store_path,
)
from repro.store.fingerprint import (
    audit_fingerprint,
    game_content_stamp,
    run_fingerprint,
    spec_fingerprint,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "ENV_SPOOL",
    "ENV_STORE",
    "ResultStore",
    "StoreOutcome",
    "audit_fingerprint",
    "default_store_path",
    "game_content_stamp",
    "open_store",
    "resolve_store_path",
    "run_fingerprint",
    "spec_fingerprint",
]
