"""Stable content fingerprints for store keys.

A store key must mean the same thing across processes, machines, and
sessions, so it is a SHA-256 over *canonical JSON* (sorted keys, compact
separators) of exactly the fields that determine the bytes being stored
— never over pickles, reprs, or anything address- or mtime-dependent.

Two granularities exist:

* :func:`run_fingerprint` keys one :class:`~repro.experiments.results
  .RunRecord` — the :class:`~repro.experiments.cache.CellKey` slow axes
  plus the fast axes ``(scheduler, timing, seed)`` and the
  record-affecting spec fields (``record_payloads``, ``step_limit``,
  the raw-game action profile). The scenario name is included: a record
  carries its scenario, so a cross-scenario hit would hand back a record
  whose identity fields disagree with the requesting spec.
* :func:`spec_fingerprint` / :func:`audit_fingerprint` key a whole
  stored :class:`ExperimentResult` / :class:`AuditResult` document by the
  full spec dict (plus the frontier's (k, t) ranges), so an identical
  submission is answered with the byte-identical result JSON.

``file:`` games fingerprint by a SHA-256 of the file's *content*
(:func:`game_content_stamp`), not its ``(mtime, size)``: the in-process
:class:`~repro.experiments.cache.ArtifactCache` wants cheap invalidation,
but a durable store must survive checkouts and copies that rewrite
mtimes without changing meaning.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.games.registry import FILE_GAME_PREFIX

FINGERPRINT_VERSION = 3
"""Bump when the fingerprint layout changes: old store rows simply stop
matching (and stay readable through the query API) instead of being
served against a key that no longer means the same thing.

Version history: 2 added the ``runtime``/``latency`` axes so net-substrate
cells never dedup against simulated-kernel cells; 3 added the ``faults``
axis so a faulty cell never dedups against its fault-free twin."""


def canonical_json(data) -> str:
    """The one serialization fingerprints are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def digest(data) -> str:
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def game_content_stamp(game_name: str) -> Optional[str]:
    """Content hash for ``file:`` games; None for registry/family names.

    A missing or unreadable file stamps as ``"missing"`` — the cell still
    fingerprints deterministically, and the run itself will record the
    error.
    """
    if not game_name.startswith(FILE_GAME_PREFIX):
        return None
    path = game_name[len(FILE_GAME_PREFIX):]
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return "missing"


def _game_stamps(spec) -> dict:
    """Content stamps for every ``file:`` game the spec can touch."""
    stamps = {}
    for name in (spec.game,) + tuple(spec.game_axis):
        stamp = game_content_stamp(name)
        if stamp is not None:
            stamps[name] = stamp
    return stamps


def run_fingerprint(spec, task) -> str:
    """The store key of one grid cell's :class:`RunRecord`."""
    game_name = task.game or spec.game
    profile = (
        list(spec.action_profiles[task.profile_index])
        if spec.theorem == "raw-game" and task.profile_index is not None
        else None
    )
    return digest({
        "v": FINGERPRINT_VERSION,
        "kind": "run",
        "scenario": spec.name,
        "theorem": spec.theorem,
        "game": game_name,
        "game_content": game_content_stamp(game_name),
        "n": spec.n,
        "k": spec.k,
        "t": spec.t,
        "epsilon": spec.epsilon,
        "mediator_variant": spec.mediator_variant,
        "deviation": task.deviation,
        "scheduler": task.scheduler,
        "timing": task.timing,
        "runtime": task.runtime,
        "latency": task.latency,
        "faults": task.faults,
        "seed": task.seed,
        "type_profile": (
            list(spec.type_profile) if spec.type_profile is not None else None
        ),
        "action_profile": profile,
        "step_limit": spec.step_limit,
        "record_payloads": spec.record_payloads,
    })


def spec_fingerprint(spec) -> str:
    """The store key of a whole scenario grid's :class:`ExperimentResult`.

    The full spec dict participates (it is embedded verbatim in the stored
    JSON), so any spec-visible difference — even ``description`` — keys a
    distinct result document.
    """
    return digest({
        "v": FINGERPRINT_VERSION,
        "kind": "scenario",
        "spec": spec.to_dict(),
        "games": _game_stamps(spec),
    })


def audit_fingerprint(spec, ks=None, ts=None, kind: str = "audit") -> str:
    """The store key of an :class:`AuditResult` (one cell or a frontier)."""
    game_content = (
        game_content_stamp(spec.game) if spec.game is not None else None
    )
    return digest({
        "v": FINGERPRINT_VERSION,
        "kind": kind,
        "spec": spec.to_dict(),
        "game_content": game_content,
        "ks": list(ks) if ks is not None else None,
        "ts": list(ts) if ts is not None else None,
    })
