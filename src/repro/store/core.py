"""The durable, SQLite-backed experiment result store.

:class:`ResultStore` persists two granularities under content-hash keys
(:mod:`repro.store.fingerprint`):

* ``runs`` — one :class:`~repro.experiments.results.RunRecord` per grid
  cell, keyed by :func:`~repro.store.fingerprint.run_fingerprint`. The
  :class:`~repro.experiments.runner.ExperimentRunner` consults this table
  before simulating (``store=``): cells already present are answered from
  the store and **never re-simulated**; only the missing subset runs.
* ``results`` — whole :class:`ExperimentResult` / :class:`AuditResult`
  documents stored as **verbatim JSON text**, keyed by
  :func:`~repro.store.fingerprint.spec_fingerprint` /
  :func:`~repro.store.fingerprint.audit_fingerprint`. A repeat
  :meth:`get_or_run` of an identical spec returns the stored text
  byte-for-byte — the dedup guarantee the job service builds on.

Immutability is the core invariant: every write is ``INSERT OR IGNORE``,
so a fingerprint's row can never be overwritten — concurrent writers
race benignly (first writer wins, the loser's write is a no-op) and a
reader always sees either nothing or the canonical bytes. The database
runs in WAL mode so concurrent processes can read while one writes.

The store lives in the *submitting* process only. It is never shipped to
pool workers (a ``sqlite3`` connection is unpicklable, and the runner's
workers stay store-oblivious by design) — the runner partitions the grid
into hits and misses up front and touches the store only from the
coordinating process.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.errors import StoreError
from repro.experiments.results import ExperimentResult, RunRecord
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import span as obs_span
from repro.store.fingerprint import canonical_json, spec_fingerprint

SCHEMA_VERSION = 1

ENV_STORE = "REPRO_STORE"
"""Environment variable naming the store database path."""

ENV_SPOOL = "REPRO_SPOOL"
"""Environment variable naming the service spool directory."""

DEFAULT_STORE_DIR = "~/.repro-store"
"""Default home of the service's store database and job spool."""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    fingerprint TEXT PRIMARY KEY,
    scenario    TEXT NOT NULL,
    theorem     TEXT NOT NULL,
    game        TEXT NOT NULL,
    timing      TEXT NOT NULL,
    scheduler   TEXT NOT NULL,
    deviation   TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    record      TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_scenario ON runs (scenario, seed);
CREATE INDEX IF NOT EXISTS runs_game ON runs (game);
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    name        TEXT NOT NULL,
    payload     TEXT NOT NULL,
    records     INTEGER NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS results_name ON results (kind, name);
"""


def default_store_path() -> str:
    """Where the service keeps its database unless told otherwise."""
    return os.path.join(os.path.expanduser(DEFAULT_STORE_DIR), "store.sqlite")


def resolve_store_path(
    explicit: Optional[str] = None, default: Optional[str] = None
) -> Optional[str]:
    """Store path precedence: ``--store PATH`` > ``REPRO_STORE`` > default.

    ``default`` is ``None`` for one-shot CLI commands (no store unless
    asked) and :func:`default_store_path` for the service (always
    durable). Returns ``None`` when no store should be used.
    """
    if explicit:
        return explicit
    env = os.environ.get(ENV_STORE)
    if env:
        return env
    return default


def open_store(
    explicit: Optional[str] = None, default: Optional[str] = None
) -> Optional["ResultStore"]:
    """A :class:`ResultStore` per :func:`resolve_store_path`, or ``None``."""
    path = resolve_store_path(explicit, default)
    return ResultStore(path) if path else None


@dataclass(frozen=True)
class StoreOutcome:
    """What :meth:`ResultStore.get_or_run` hands back.

    ``text`` is the *canonical stored JSON* — on a hit the bytes already
    in the store, on a miss the bytes just written (or, if a concurrent
    writer won the race, the bytes *it* wrote — first writer wins, so
    every caller agrees on one canonical document per fingerprint).
    """

    result: ExperimentResult
    text: str
    hit: bool
    fingerprint: str


class ResultStore:
    """A WAL-mode SQLite store of runs and result documents.

    Use as a context manager (or call :meth:`close`); the connection is
    owned by the opening process and must not cross a fork. Counters
    (``hits``/``misses`` for runs, ``result_hits``/``result_misses`` for
    documents) accumulate over the store's lifetime — the job service
    reports them per job as its dedup proof.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = os.fspath(path)
        if self.path != ":memory:":
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        try:
            # check_same_thread off: a JobServer may drain the spool from
            # a worker thread while the store was opened on the main one;
            # access stays serialized (one coordinating caller at a time).
            self._conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open store at {self.path}: {exc}") from exc
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._check_schema_version()
        self.hits = 0
        self.misses = 0
        self.result_hits = 0
        self.result_misses = 0

    def _check_schema_version(self) -> None:
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None or int(row[0]) != SCHEMA_VERSION:
            found = row[0] if row else "missing"
            raise StoreError(
                f"store {self.path} has schema version {found}, "
                f"this build expects {SCHEMA_VERSION}"
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- run records ---------------------------------------------------------

    def fetch_records(
        self, fingerprints: Iterable[str]
    ) -> dict[str, RunRecord]:
        """The stored records among ``fingerprints`` (bumps hit/miss)."""
        t0 = time.perf_counter()
        wanted = list(dict.fromkeys(fingerprints))
        found: dict[str, RunRecord] = {}
        # SQLite caps bound parameters per statement; batch generously
        # below the historical 999 limit.
        for batch_start in range(0, len(wanted), 500):
            batch = wanted[batch_start:batch_start + 500]
            marks = ",".join("?" * len(batch))
            rows = self._conn.execute(
                f"SELECT fingerprint, record FROM runs "
                f"WHERE fingerprint IN ({marks})",
                batch,
            ).fetchall()
            for fingerprint, text in rows:
                found[fingerprint] = self._parse_record(fingerprint, text)
        self.hits += len(found)
        self.misses += len(wanted) - len(found)
        metrics = obs_registry()
        metrics.counter(
            "repro_store_run_hits_total", "per-cell records found in the store"
        ).inc(len(found))
        metrics.counter(
            "repro_store_run_misses_total",
            "per-cell records missing from the store",
        ).inc(len(wanted) - len(found))
        metrics.histogram(
            "repro_store_fetch_seconds", "store read latency"
        ).observe(time.perf_counter() - t0)
        return found

    @staticmethod
    def _parse_record(fingerprint: str, text: str) -> RunRecord:
        try:
            return RunRecord.from_dict(json.loads(text))
        except Exception as exc:
            raise StoreError(
                f"corrupt run record for fingerprint {fingerprint}: {exc}"
            ) from exc

    def put_records(
        self, items: Iterable[tuple[str, RunRecord]]
    ) -> int:
        """Persist records under their fingerprints; returns rows inserted.

        ``INSERT OR IGNORE``: a fingerprint already present keeps its
        original bytes — cells are immutable once written.
        """
        t0 = time.perf_counter()
        now = time.time()
        rows = [
            (
                fingerprint,
                record.scenario,
                record.theorem,
                record.game,
                record.timing,
                record.scheduler,
                record.deviation,
                record.seed,
                canonical_json(record.to_dict()),
                now,
            )
            for fingerprint, record in items
        ]
        if not rows:
            return 0
        before = self._conn.total_changes
        self._conn.executemany(
            "INSERT OR IGNORE INTO runs "
            "(fingerprint, scenario, theorem, game, timing, scheduler, "
            " deviation, seed, record, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()
        inserted = self._conn.total_changes - before
        metrics = obs_registry()
        metrics.counter(
            "repro_store_run_writes_total", "per-cell records inserted"
        ).inc(inserted)
        metrics.histogram(
            "repro_store_write_seconds", "store write latency"
        ).observe(time.perf_counter() - t0)
        return inserted

    def query_records(
        self,
        scenario: Optional[str] = None,
        game: Optional[str] = None,
        theorem: Optional[str] = None,
        timing: Optional[str] = None,
        scheduler: Optional[str] = None,
        deviation: Optional[str] = None,
        seed_min: Optional[int] = None,
        seed_max: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> list[RunRecord]:
        """Stored records matching every given filter, seed-then-key order."""
        clauses = []
        params: list = []
        for column, value in (
            ("scenario", scenario),
            ("game", game),
            ("theorem", theorem),
            ("timing", timing),
            ("scheduler", scheduler),
            ("deviation", deviation),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if seed_min is not None:
            clauses.append("seed >= ?")
            params.append(seed_min)
        if seed_max is not None:
            clauses.append("seed <= ?")
            params.append(seed_max)
        sql = "SELECT fingerprint, record FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seed, fingerprint"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [
            self._parse_record(fingerprint, text)
            for fingerprint, text in self._conn.execute(sql, params)
        ]

    # -- result documents ----------------------------------------------------

    def fetch_result(self, fingerprint: str) -> Optional[str]:
        """The verbatim stored JSON for a result fingerprint, or ``None``."""
        t0 = time.perf_counter()
        row = self._conn.execute(
            "SELECT payload FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        obs_registry().histogram(
            "repro_store_fetch_seconds", "store read latency"
        ).observe(time.perf_counter() - t0)
        return row[0] if row else None

    def put_result(
        self,
        fingerprint: str,
        kind: str,
        name: str,
        payload: str,
        records: int,
    ) -> bool:
        """Persist a result document; False when the key already existed."""
        t0 = time.perf_counter()
        before = self._conn.total_changes
        self._conn.execute(
            "INSERT OR IGNORE INTO results "
            "(fingerprint, kind, name, payload, records, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (fingerprint, kind, name, payload, records, time.time()),
        )
        self._conn.commit()
        inserted = self._conn.total_changes > before
        metrics = obs_registry()
        metrics.counter(
            "repro_store_result_writes_total", "result documents inserted"
        ).inc(1 if inserted else 0)
        metrics.histogram(
            "repro_store_write_seconds", "store write latency"
        ).observe(time.perf_counter() - t0)
        return inserted

    # -- get-or-run ----------------------------------------------------------

    def get_or_run(
        self,
        scenario,
        runner=None,
        progress=None,
        parallel: bool = False,
        processes: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> StoreOutcome:
        """An identical scenario is answered from the store, never re-run.

        On a miss the grid runs through ``runner`` (or an owned
        :class:`ExperimentRunner` built from the keyword arguments) with
        this store threaded in — so even a miss reuses any individual
        cells other scenarios already simulated — and the result document
        is stored verbatim. On a hit, zero simulation work happens and
        the returned ``text`` is byte-identical to the first run's.
        """
        if isinstance(scenario, str):
            from repro.experiments.registry import get_scenario

            spec = get_scenario(scenario)
        else:
            spec = scenario
        fingerprint = spec_fingerprint(spec)
        with obs_span("store-lookup", scenario=spec.name):
            stored = self.fetch_result(fingerprint)
        metrics = obs_registry()
        if stored is not None:
            self.result_hits += 1
            metrics.counter(
                "repro_store_result_hits_total",
                "scenarios answered verbatim from the store",
            ).inc(scenario=spec.name)
            if progress is not None:
                total = max(spec.grid_size(), 1)
                progress(total, total)
            return StoreOutcome(
                result=ExperimentResult.from_json(stored),
                text=stored,
                hit=True,
                fingerprint=fingerprint,
            )
        self.result_misses += 1
        metrics.counter(
            "repro_store_result_misses_total",
            "scenarios that had to be simulated",
        ).inc(scenario=spec.name)
        if runner is not None:
            result = runner.run(spec, progress=progress, store=self)
        else:
            from repro.experiments.runner import ExperimentRunner

            with ExperimentRunner(
                parallel=parallel, processes=processes, timeout_s=timeout_s
            ) as owned:
                result = owned.run(spec, progress=progress, store=self)
        text = result.to_json(indent=2)
        self.put_result(
            fingerprint, "scenario", spec.name, text, len(result.records)
        )
        # A concurrent writer may have won the race; the stored bytes are
        # canonical either way.
        stored = self.fetch_result(fingerprint)
        return StoreOutcome(
            result=result,
            text=stored if stored is not None else text,
            hit=False,
            fingerprint=fingerprint,
        )

    # -- aggregate views -----------------------------------------------------

    def counters(self) -> dict:
        """Lifetime dedup counters (the job service's per-job stats source)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
        }

    def summary(self) -> dict:
        """Aggregate view of what the store holds."""
        runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        results = self._conn.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()[0]
        by_scenario = dict(
            self._conn.execute(
                "SELECT scenario, COUNT(*) FROM runs "
                "GROUP BY scenario ORDER BY scenario"
            ).fetchall()
        )
        by_kind = dict(
            self._conn.execute(
                "SELECT kind, COUNT(*) FROM results "
                "GROUP BY kind ORDER BY kind"
            ).fetchall()
        )
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "runs": runs,
            "results": results,
            "by_scenario": by_scenario,
            "by_kind": by_kind,
        }
